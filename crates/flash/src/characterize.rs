//! The synthetic device-characterization campaign.
//!
//! Stands in for the paper's study of 160 real 3D TLC NAND chips (§III-A,
//! §V-A1): it samples a population of blocks from the process-variation
//! distribution and sweeps operating conditions, producing
//!
//! * the retention-to-failure distributions of **Fig. 4** (proportion of
//!   blocks whose RBER first exceeds the ECC capability after x days at
//!   y P/E cycles), and
//! * the intra-page chunk RBER similarity of **Fig. 12** (maximum
//!   `(RBERmax − RBERmin)/RBERmax` across fixed-size chunks of a 16-KiB
//!   page).

use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::channel::Bsc;

use crate::rber::{BlockProfile, ErrorModel};
use crate::vth::OperatingPoint;

/// One cell of the Fig. 4 heat map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetentionCell {
    /// P/E-cycle count of the row.
    pub pe_cycles: u32,
    /// Retention day of the column.
    pub day: u32,
    /// Proportion of sampled blocks whose RBER first exceeds the ECC
    /// capability on this day.
    pub proportion: f64,
}

/// Distribution of first-failure retention days per P/E count (Fig. 4).
///
/// Blocks that survive the whole `max_day` horizon are not represented in
/// any cell (their proportion is reported via [`RetentionMap::survivors`]).
#[derive(Debug, Clone)]
pub struct RetentionMap {
    cells: Vec<RetentionCell>,
    survivors: Vec<(u32, f64)>,
}

impl RetentionMap {
    /// All non-empty histogram cells.
    pub fn cells(&self) -> &[RetentionCell] {
        &self.cells
    }

    /// Fraction of blocks per P/E count that never crossed the capability
    /// within the horizon.
    pub fn survivors(&self) -> &[(u32, f64)] {
        &self.survivors
    }

    /// First day with non-zero failure proportion at `pe_cycles` (the
    /// earliest retry onset the paper quotes: 17/14/10/8 days).
    pub fn first_failure_day(&self, pe_cycles: u32) -> Option<u32> {
        self.cells
            .iter()
            .filter(|c| c.pe_cycles == pe_cycles && c.proportion > 0.0)
            .map(|c| c.day)
            .min()
    }

    /// Median first-failure day at `pe_cycles`.
    pub fn median_failure_day(&self, pe_cycles: u32) -> Option<f64> {
        let mut acc = 0.0;
        let total: f64 = self
            .cells
            .iter()
            .filter(|c| c.pe_cycles == pe_cycles)
            .map(|c| c.proportion)
            .sum();
        if total <= 0.0 {
            return None;
        }
        for c in self.cells.iter().filter(|c| c.pe_cycles == pe_cycles) {
            acc += c.proportion;
            if acc >= total / 2.0 {
                return Some(c.day as f64);
            }
        }
        None
    }
}

/// Runs the Fig. 4 campaign: samples `blocks_per_pe` block profiles per P/E
/// count and histograms the first retention day at which each block's
/// kind-averaged RBER exceeds `cap`.
///
/// # Panics
///
/// Panics if `blocks_per_pe` is zero or `max_day` is zero.
pub fn retention_failure_map(
    model: &ErrorModel,
    pe_list: &[u32],
    max_day: u32,
    blocks_per_pe: usize,
    cap: f64,
    seed: u64,
) -> RetentionMap {
    assert!(blocks_per_pe > 0, "need at least one block per P/E point");
    assert!(max_day > 0, "horizon must be positive");
    let mut rng = SimRng::seed_from(seed);
    let mut cells = Vec::new();
    let mut survivors = Vec::new();
    for &pe in pe_list {
        let mut hist = vec![0usize; max_day as usize + 1];
        let mut alive = 0usize;
        for _ in 0..blocks_per_pe {
            let block = BlockProfile::sample(&mut rng);
            match model.days_to_exceed(block, pe, cap, max_day as f64) {
                Some(d) => hist[(d.ceil() as usize).min(max_day as usize)] += 1,
                None => alive += 1,
            }
        }
        for (day, &count) in hist.iter().enumerate() {
            if count > 0 {
                cells.push(RetentionCell {
                    pe_cycles: pe,
                    day: day as u32,
                    proportion: count as f64 / blocks_per_pe as f64,
                });
            }
        }
        survivors.push((pe, alive as f64 / blocks_per_pe as f64));
    }
    RetentionMap { cells, survivors }
}

/// One row of the Fig. 12 study.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkSimilarityRow {
    /// P/E-cycle count.
    pub pe_cycles: u32,
    /// Retention days.
    pub day: u32,
    /// Chunk size in KiB (4, 2 or 1 in the paper).
    pub chunk_kib: usize,
    /// Maximum observed `(RBERmax − RBERmin)/RBERmax` across chunks,
    /// over all sampled pages.
    pub max_ratio: f64,
}

/// Runs the Fig. 12 study: for each (P/E, day, chunk size) it injects
/// errors into `pages` simulated 16-KiB pages at the model RBER and
/// measures how much per-chunk error rates diverge within a page.
///
/// # Panics
///
/// Panics if `pages` is zero or a chunk size does not divide 16 KiB.
pub fn chunk_similarity(
    model: &ErrorModel,
    pe_list: &[u32],
    days: &[u32],
    chunk_kibs: &[usize],
    pages: usize,
    seed: u64,
) -> Vec<ChunkSimilarityRow> {
    assert!(pages > 0, "need at least one page");
    const PAGE_BITS: usize = 16 * 1024 * 8;
    let mut rng = SimRng::seed_from(seed);
    let mut out = Vec::new();
    for &pe in pe_list {
        for &day in days {
            for &chunk_kib in chunk_kibs {
                let chunk_bits = chunk_kib * 1024 * 8;
                assert!(
                    PAGE_BITS % chunk_bits == 0,
                    "chunk size {chunk_kib} KiB does not divide the page"
                );
                let n_chunks = PAGE_BITS / chunk_bits;
                let mut max_ratio: f64 = 0.0;
                for _ in 0..pages {
                    let block = BlockProfile::sample(&mut rng);
                    let rber = model.rber_avg_default(block, OperatingPoint::new(pe, day as f64));
                    let page = Bsc::new(rber.min(0.5)).corrupt(&BitVec::zeros(PAGE_BITS), &mut rng);
                    let mut rates = Vec::with_capacity(n_chunks);
                    for c in 0..n_chunks {
                        let errs = page.slice(c * chunk_bits, chunk_bits).count_ones();
                        rates.push(errs as f64 / chunk_bits as f64);
                    }
                    let hi = rates.iter().cloned().fold(f64::MIN, f64::max);
                    let lo = rates.iter().cloned().fold(f64::MAX, f64::min);
                    if hi > 0.0 {
                        max_ratio = max_ratio.max((hi - lo) / hi);
                    }
                }
                out.push(ChunkSimilarityRow {
                    pe_cycles: pe,
                    day,
                    chunk_kib,
                    max_ratio,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_map_onset_shrinks_with_pe() {
        let model = ErrorModel::calibrated();
        let map = retention_failure_map(&model, &[0, 1000], 40, 200, 0.0085, 1);
        let d0 = map.median_failure_day(0).unwrap();
        let d1000 = map.median_failure_day(1000).unwrap();
        assert!(d1000 < d0, "1K median {d1000} not earlier than 0K {d0}");
        // Fig. 4 anchors (±3 days of slack for process-variation medians).
        assert!((14.0..21.0).contains(&d0), "0K median {d0}");
        assert!((5.0..12.0).contains(&d1000), "1K median {d1000}");
    }

    #[test]
    fn retention_map_proportions_sum_with_survivors_to_one() {
        let model = ErrorModel::calibrated();
        let map = retention_failure_map(&model, &[500], 40, 150, 0.0085, 2);
        let failing: f64 = map
            .cells()
            .iter()
            .filter(|c| c.pe_cycles == 500)
            .map(|c| c.proportion)
            .sum();
        let surviving = map.survivors().iter().find(|(pe, _)| *pe == 500).unwrap().1;
        assert!((failing + surviving - 1.0).abs() < 1e-9);
    }

    #[test]
    fn first_failure_precedes_median() {
        let model = ErrorModel::calibrated();
        let map = retention_failure_map(&model, &[200], 40, 200, 0.0085, 3);
        let first = map.first_failure_day(200).unwrap() as f64;
        let median = map.median_failure_day(200).unwrap();
        assert!(first <= median);
    }

    #[test]
    fn chunk_ratio_grows_as_chunks_shrink() {
        // Fig. 12's key message: 1-KiB chunks vary more than 4-KiB chunks.
        let model = ErrorModel::calibrated();
        let rows = chunk_similarity(&model, &[1000], &[14], &[4, 1], 30, 4);
        let r4 = rows.iter().find(|r| r.chunk_kib == 4).unwrap().max_ratio;
        let r1 = rows.iter().find(|r| r.chunk_kib == 1).unwrap().max_ratio;
        assert!(r1 > r4, "1-KiB ratio {r1} not above 4-KiB ratio {r4}");
    }

    #[test]
    fn chunk_ratio_is_small_for_4kib_chunks_when_aged() {
        // With RBER near the capability, 4-KiB chunks hold hundreds of
        // errors, so relative spread is modest — the basis for RP's
        // single-chunk approximation (§V-A1).
        let model = ErrorModel::calibrated();
        let rows = chunk_similarity(&model, &[2000], &[21], &[4], 30, 5);
        assert!(rows[0].max_ratio < 0.35, "ratio {}", rows[0].max_ratio);
    }

    #[test]
    #[should_panic(expected = "does not divide")]
    fn chunk_similarity_rejects_bad_chunk() {
        let model = ErrorModel::calibrated();
        let _ = chunk_similarity(&model, &[0], &[1], &[3], 1, 6);
    }
}
