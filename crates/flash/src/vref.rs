//! Read-reference voltage sets and the vendor read-retry sequence.
//!
//! A TLC read compares cell V_TH against a subset of seven references
//! R1–R7. When decoding fails, a conventional controller walks a
//! *predetermined sequence* of reference sets supplied by the flash vendor
//! (paper §II-B2), stepping the references downward because retention loss
//! shifts distributions down.

use crate::vth::{StateParam, TlcModel};

/// A complete set of seven read-reference voltages.
///
/// # Example
///
/// ```
/// use rif_flash::ReadVoltages;
///
/// let refs = ReadVoltages::new([0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5]);
/// let shifted = refs.offset_all(-0.1);
/// assert!((shifted.get(1) - 0.4).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadVoltages {
    refs: [f64; 7],
}

impl ReadVoltages {
    /// Wraps seven reference voltages, R1 first.
    ///
    /// # Panics
    ///
    /// Panics if the references are not strictly increasing.
    pub fn new(refs: [f64; 7]) -> Self {
        for w in refs.windows(2) {
            assert!(w[0] < w[1], "read references must be strictly increasing");
        }
        ReadVoltages { refs }
    }

    /// Reference `Rr` for `r` in 1–7.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ r ≤ 7`.
    pub fn get(&self, r: usize) -> f64 {
        assert!((1..=7).contains(&r), "reference index {r} out of range");
        self.refs[r - 1]
    }

    /// All seven references as an array (R1 first).
    pub fn as_array(&self) -> &[f64; 7] {
        &self.refs
    }

    /// A copy with every reference shifted by `delta`.
    pub fn offset_all(&self, delta: f64) -> ReadVoltages {
        let mut refs = self.refs;
        for v in &mut refs {
            *v += delta;
        }
        ReadVoltages { refs }
    }

    /// A copy with per-reference offsets.
    ///
    /// # Panics
    ///
    /// Panics if the offsets break the strict ordering.
    pub fn offset_each(&self, deltas: &[f64; 7]) -> ReadVoltages {
        let mut refs = self.refs;
        for (v, d) in refs.iter_mut().zip(deltas) {
            *v += d;
        }
        ReadVoltages::new(refs)
    }
}

impl From<[f64; 7]> for ReadVoltages {
    fn from(refs: [f64; 7]) -> Self {
        ReadVoltages::new(refs)
    }
}

/// The vendor's predetermined read-retry V_REF sequence: retry level `k`
/// applies a uniform downward offset of `k · step` to all references.
#[derive(Debug, Clone, PartialEq)]
pub struct RetrySequence {
    step: f64,
    max_level: usize,
}

impl RetrySequence {
    /// The default sequence: a normalized 0.04-V step per level, up to 8
    /// levels — enough to track a month of retention loss in the
    /// calibrated model.
    pub fn vendor_default() -> Self {
        RetrySequence {
            step: 0.04,
            max_level: 8,
        }
    }

    /// Builds a custom sequence.
    ///
    /// # Panics
    ///
    /// Panics unless `step > 0` and `max_level > 0`.
    pub fn new(step: f64, max_level: usize) -> Self {
        assert!(step > 0.0, "retry step must be positive");
        assert!(max_level > 0, "need at least one retry level");
        RetrySequence { step, max_level }
    }

    /// Number of levels in the sequence.
    pub fn max_level(&self) -> usize {
        self.max_level
    }

    /// References at retry level `level` (level 0 = `base`).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`RetrySequence::max_level`].
    pub fn refs_at(&self, base: ReadVoltages, level: usize) -> ReadVoltages {
        assert!(level <= self.max_level, "retry level {level} out of range");
        base.offset_all(-(self.step * level as f64))
    }
}

/// Helper: the calibrated model's references packaged as [`ReadVoltages`].
pub fn default_voltages(model: &TlcModel) -> ReadVoltages {
    ReadVoltages::new(model.default_refs())
}

/// Helper: optimal references for the given state distributions.
pub fn optimal_voltages(model: &TlcModel, params: [StateParam; 8]) -> ReadVoltages {
    ReadVoltages::new(model.optimal_refs(params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vth::OperatingPoint;

    #[test]
    fn new_validates_ordering() {
        let _ = ReadVoltages::new([0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn new_rejects_unordered() {
        let _ = ReadVoltages::new([0.5, 0.4, 2.5, 3.5, 4.5, 5.5, 6.5]);
    }

    #[test]
    fn offsets_apply() {
        let v = ReadVoltages::new([0.5, 1.5, 2.5, 3.5, 4.5, 5.5, 6.5]);
        let down = v.offset_all(-0.2);
        for r in 1..=7 {
            assert!((down.get(r) - (v.get(r) - 0.2)).abs() < 1e-12);
        }
        let each = v.offset_each(&[0.1, 0.0, 0.0, 0.0, 0.0, 0.0, 0.1]);
        assert!((each.get(1) - 0.6).abs() < 1e-12);
        assert!((each.get(4) - 3.5).abs() < 1e-12);
    }

    #[test]
    fn retry_sequence_steps_down() {
        let model = TlcModel::calibrated();
        let base = default_voltages(&model);
        let seq = RetrySequence::vendor_default();
        let mut last = base.get(4);
        for level in 1..=seq.max_level() {
            let v = seq.refs_at(base, level).get(4);
            assert!(v < last, "level {level} did not lower R4");
            last = v;
        }
    }

    #[test]
    fn retry_sequence_eventually_improves_aged_page_rber() {
        // Walking the vendor sequence must find a level whose RBER is far
        // below the default-reference RBER for a retention-shifted page —
        // this is why read-retry works at all (§II-B2).
        let model = TlcModel::calibrated();
        let base = default_voltages(&model);
        let seq = RetrySequence::vendor_default();
        let op = OperatingPoint::new(1000, 20.0);
        let default_rber = model.rber_avg(op, 1.0, base.as_array());
        let best = (1..=seq.max_level())
            .map(|l| model.rber_avg(op, 1.0, seq.refs_at(base, l).as_array()))
            .fold(f64::INFINITY, f64::min);
        assert!(
            best < default_rber * 0.3,
            "sequence best {best} vs default {default_rber}"
        );
    }

    #[test]
    fn optimal_voltages_match_model() {
        let model = TlcModel::calibrated();
        let params = model.state_params(OperatingPoint::new(500, 10.0), 1.0);
        let v = optimal_voltages(&model, params);
        let direct = model.optimal_refs(params);
        for r in 1..=7 {
            assert!((v.get(r) - direct[r - 1]).abs() < 1e-12);
        }
    }
}
