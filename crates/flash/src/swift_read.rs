//! Swift-Read V_REF estimation (Cho et al., ISSCC'22; paper §III-B, §IV-C).
//!
//! Swift-Read exploits data randomization: the expected ones-density of a
//! page is known in advance, so the *difference* between the measured
//! ones-count of a sense and the expectation reveals how far the V_TH
//! distributions have drifted. The flash die can therefore pick
//! near-optimal references with a single extra sense and no controller
//! involvement — which is exactly the mechanism the RVS module of a
//! RiF-enabled die reuses.

use rif_events::SimRng;

use crate::geometry::PageKind;
use crate::vref::ReadVoltages;
use crate::vth::{OperatingPoint, TlcModel};

/// The Swift-Read estimator.
///
/// # Example
///
/// ```
/// use rif_flash::swift_read::SwiftRead;
/// use rif_flash::{TlcModel, PageKind, OperatingPoint};
/// use rif_events::SimRng;
///
/// let sr = SwiftRead::new(TlcModel::calibrated());
/// let mut rng = SimRng::seed_from(5);
/// let op = OperatingPoint::new(1000, 20.0);
/// let refs = sr.select_refs(op, 1.1, PageKind::Csb, 131_072, &mut rng);
/// // The selected references decode far better than the defaults.
/// let m = TlcModel::calibrated();
/// let selected = m.rber(op, 1.1, refs.as_array(), PageKind::Csb);
/// let default = m.rber(op, 1.1, &m.default_refs(), PageKind::Csb);
/// assert!(selected < default);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SwiftRead {
    model: TlcModel,
    default_refs: [f64; 7],
}

impl SwiftRead {
    /// Builds an estimator over the given V_TH model.
    pub fn new(model: TlcModel) -> Self {
        let default_refs = model.default_refs();
        SwiftRead {
            model,
            default_refs,
        }
    }

    /// Simulates the measurement step: senses a page of `n_cells` bits at
    /// the default references and returns the observed ones-fraction
    /// (expected fraction plus binomial sampling noise).
    pub fn observe_ones(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        n_cells: usize,
        rng: &mut SimRng,
    ) -> f64 {
        assert!(n_cells > 0, "page must have at least one cell");
        let params = self.model.state_params(op, process_factor);
        let f = self.model.ones_fraction(&params, &self.default_refs, kind);
        let noise_sigma = (f * (1.0 - f) / n_cells as f64).sqrt();
        (f + rng.gaussian_with(0.0, noise_sigma)).clamp(0.0, 1.0)
    }

    /// Inverts an observed ones-fraction into an effective retention age
    /// and returns the optimal references for that age.
    ///
    /// The die knows its own P/E count but not the page's true retention
    /// age or the block's process corner; the ones-count collapses both
    /// into a single drift magnitude, which is searched by bisection over
    /// the retention axis (monotone in drift).
    pub fn refs_from_observation(
        &self,
        pe_cycles: u32,
        kind: PageKind,
        observed_ones: f64,
    ) -> ReadVoltages {
        // Ones-fraction at default refs as a function of hypothetical age.
        let f_of = |days: f64| {
            let params = self
                .model
                .state_params(OperatingPoint::new(pe_cycles, days), 1.0);
            self.model.ones_fraction(&params, &self.default_refs, kind)
        };
        let (mut lo, mut hi) = (0.0_f64, 60.0_f64);
        let (f_lo, f_hi) = (f_of(lo), f_of(hi));
        let increasing = f_hi > f_lo;
        // Clamp observations outside the representable drift range.
        let target = if increasing {
            observed_ones.clamp(f_lo, f_hi)
        } else {
            observed_ones.clamp(f_hi, f_lo)
        };
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            let fm = f_of(mid);
            if (fm < target) == increasing {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let est_days = 0.5 * (lo + hi);
        let params = self
            .model
            .state_params(OperatingPoint::new(pe_cycles, est_days), 1.0);
        ReadVoltages::new(self.model.optimal_refs(params))
    }

    /// Full Swift-Read flow: sense at default references, count ones,
    /// select references. The two senses cost `2·tR` on the die
    /// (paper §III-B: "two reads to the target page inside the chip").
    pub fn select_refs(
        &self,
        op: OperatingPoint,
        process_factor: f64,
        kind: PageKind,
        n_cells: usize,
        rng: &mut SimRng,
    ) -> ReadVoltages {
        let observed = self.observe_ones(op, process_factor, kind, n_cells, rng);
        self.refs_from_observation(op.pe_cycles, kind, observed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_gap(
        model: &TlcModel,
        op: OperatingPoint,
        factor: f64,
        refs: &ReadVoltages,
        kind: PageKind,
    ) -> (f64, f64) {
        let params = model.state_params(op, factor);
        let optimal = model.optimal_refs(params);
        let got = model.rber_with_params(&params, refs.as_array(), kind);
        let best = model.rber_with_params(&params, &optimal, kind);
        (got, best)
    }

    #[test]
    fn selected_refs_are_near_optimal() {
        let model = TlcModel::calibrated();
        let sr = SwiftRead::new(model.clone());
        let mut rng = SimRng::seed_from(11);
        for &(pe, days) in &[(0u32, 25.0), (1000, 15.0), (2000, 10.0)] {
            let op = OperatingPoint::new(pe, days);
            for kind in PageKind::ALL {
                let refs = sr.select_refs(op, 1.0, kind, 131_072, &mut rng);
                let (got, best) = rel_gap(&model, op, 1.0, &refs, kind);
                assert!(
                    got < best * 4.0 + 1e-5,
                    "pe={pe} d={days} {kind}: swift {got} vs optimal {best}"
                );
                // And always below the correction capability.
                assert!(got < 0.0085, "pe={pe} d={days} {kind}: swift RBER {got}");
            }
        }
    }

    #[test]
    fn estimation_tracks_process_variation() {
        // A weak block (factor 1.5) drifts faster than its age suggests;
        // the ones-count sees the *actual* drift, so the selected refs must
        // still beat the defaults by a wide margin.
        let model = TlcModel::calibrated();
        let sr = SwiftRead::new(model.clone());
        let mut rng = SimRng::seed_from(13);
        let op = OperatingPoint::new(1000, 18.0);
        let refs = sr.select_refs(op, 1.5, PageKind::Csb, 131_072, &mut rng);
        let params = model.state_params(op, 1.5);
        let swift = model.rber_with_params(&params, refs.as_array(), PageKind::Csb);
        let default = model.rber_with_params(&params, &model.default_refs(), PageKind::Csb);
        assert!(swift < default * 0.3, "swift {swift} vs default {default}");
    }

    #[test]
    fn observation_noise_shrinks_with_page_size() {
        let sr = SwiftRead::new(TlcModel::calibrated());
        let op = OperatingPoint::new(0, 10.0);
        let spread = |n: usize, seed: u64| {
            let mut rng = SimRng::seed_from(seed);
            let obs: Vec<f64> = (0..200)
                .map(|_| sr.observe_ones(op, 1.0, PageKind::Lsb, n, &mut rng))
                .collect();
            let mean = obs.iter().sum::<f64>() / obs.len() as f64;
            (obs.iter().map(|o| (o - mean) * (o - mean)).sum::<f64>() / obs.len() as f64).sqrt()
        };
        let small = spread(1024, 3);
        let large = spread(131_072, 3);
        assert!(large < small, "noise did not shrink: {small} vs {large}");
    }

    #[test]
    fn refs_from_observation_is_deterministic() {
        let sr = SwiftRead::new(TlcModel::calibrated());
        let a = sr.refs_from_observation(500, PageKind::Msb, 0.52);
        let b = sr.refs_from_observation(500, PageKind::Msb, 0.52);
        assert_eq!(a, b);
    }

    #[test]
    fn clamps_out_of_range_observations() {
        let sr = SwiftRead::new(TlcModel::calibrated());
        // Impossible observations (all ones / all zeros) still yield valid,
        // ordered references.
        let lo = sr.refs_from_observation(1000, PageKind::Csb, 0.0);
        let hi = sr.refs_from_observation(1000, PageKind::Csb, 1.0);
        for r in 1..=6 {
            assert!(lo.get(r) < lo.get(r + 1));
            assert!(hi.get(r) < hi.get(r + 1));
        }
    }
}
