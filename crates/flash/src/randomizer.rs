//! Page data randomization (scrambling).
//!
//! Modern flash controllers XOR page data with a pseudo-random keystream
//! before programming (paper §III-B, §V-A1). Randomization makes the
//! programmed V_TH states uniform regardless of the host data pattern,
//! which is what gives Swift-Read its known expected ones-count and makes
//! intra-page errors uniformly distributed (Fig. 12). The keystream is
//! seeded by the physical page address so it can be regenerated on read.

use rif_ldpc::bits::BitVec;

/// A Fibonacci LFSR-based page scrambler.
///
/// Scrambling is an involution: applying it twice restores the data.
///
/// # Example
///
/// ```
/// use rif_flash::randomizer::Randomizer;
/// use rif_ldpc::bits::BitVec;
///
/// let r = Randomizer::new();
/// let mut page = BitVec::zeros(1024);
/// let scrambled = r.scramble(42, &page);
/// assert_ne!(scrambled, page);
/// page = r.scramble(42, &scrambled);
/// assert!(page.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Randomizer;

/// Maximal-length 32-bit LFSR taps: x³² + x²² + x² + x + 1.
const TAPS: u32 = 0x8040_0003;

impl Randomizer {
    /// Creates a scrambler.
    pub fn new() -> Self {
        Randomizer
    }

    fn keystream_word(state: &mut u32) -> u64 {
        let mut w = 0u64;
        for bit in 0..64 {
            let out = *state & 1;
            let fb = (*state & TAPS).count_ones() & 1;
            *state = (*state >> 1) | (fb << 31);
            w |= (out as u64) << bit;
        }
        w
    }

    /// XORs the page-address-seeded keystream into `data`.
    pub fn scramble(&self, page_seed: u64, data: &BitVec) -> BitVec {
        // Mix the seed so adjacent page addresses get unrelated streams,
        // and avoid the LFSR's all-zero fixed point.
        let mut state = (page_seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17) as u32)
            | 1;
        let mut out = data.clone();
        let n_words = data.len() / 64;
        let mut key = BitVec::zeros(n_words * 64);
        for i in 0..n_words {
            let w = Self::keystream_word(&mut state);
            for b in 0..64 {
                if (w >> b) & 1 == 1 {
                    key.set(i * 64 + b, true);
                }
            }
        }
        out.xor_assign(&key);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimRng;

    #[test]
    fn scramble_is_involutive() {
        let r = Randomizer::new();
        let mut rng = SimRng::seed_from(3);
        let data = BitVec::random(4096, &mut rng);
        let once = r.scramble(1234, &data);
        let twice = r.scramble(1234, &once);
        assert_eq!(twice, data);
    }

    #[test]
    fn different_pages_get_different_streams() {
        let r = Randomizer::new();
        let zeros = BitVec::zeros(4096);
        let a = r.scramble(1, &zeros);
        let b = r.scramble(2, &zeros);
        assert!(a.hamming_distance(&b) > 1000, "streams too similar");
    }

    #[test]
    fn scrambled_constant_data_is_balanced() {
        // The point of randomization: even pathological host patterns
        // (all zeros) program a balanced mix of states.
        let r = Randomizer::new();
        let zeros = BitVec::zeros(64 * 1024);
        let s = r.scramble(99, &zeros);
        let frac = s.count_ones() as f64 / s.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "ones fraction {frac}");
    }

    #[test]
    fn keystream_has_no_short_period() {
        let r = Randomizer::new();
        let zeros = BitVec::zeros(8192);
        let s = r.scramble(7, &zeros);
        // Compare the first and second half: a short-period stream would
        // repeat and the halves would be identical.
        let first = s.slice(0, 4096);
        let second = s.slice(4096, 4096);
        assert!(first.hamming_distance(&second) > 1500);
    }

    #[test]
    fn deterministic_per_seed() {
        let r = Randomizer::new();
        let zeros = BitVec::zeros(1024);
        assert_eq!(r.scramble(5, &zeros), r.scramble(5, &zeros));
    }
}
