//! The calibrated error model and per-block RBER lookup tables.
//!
//! The paper's extended MQSim-E models each block "with a lookup table that
//! contains RBER values at different P/E-cycle counts, retention ages, and
//! block read counts from the device characterization results of a randomly
//! chosen test block" (§VI-A). [`ErrorModel`] plays the role of the
//! 160-chip characterization: it samples per-block process variation and
//! evaluates the physical V_TH model; [`BlockErrorTable`] is the baked
//! lookup table the event-level simulator reads on every page access.

use rif_events::SimRng;

use crate::geometry::PageKind;
use crate::vref::ReadVoltages;
use crate::vth::{OperatingPoint, TlcModel};

/// Per-block reliability profile drawn from process variation.
///
/// `factor` scales the block's retention degradation: 1.0 is the median
/// block, larger is weaker. Sampled log-normally, matching the
/// block-to-block spread observed in 3D NAND characterization studies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlockProfile {
    /// Retention-degradation multiplier (≈0.6–2.0, median 1.0).
    pub factor: f64,
}

impl BlockProfile {
    /// The median block.
    pub fn median() -> Self {
        BlockProfile { factor: 1.0 }
    }

    /// Samples a block from the process-variation distribution.
    pub fn sample(rng: &mut SimRng) -> Self {
        // σ = 0.18 in log space gives roughly ±40 % at 2σ, clamped to keep
        // pathological tails out of the timing model.
        let factor = rng.log_normal(0.0, 0.18).clamp(0.55, 2.2);
        BlockProfile { factor }
    }
}

/// The full error model: physics plus calibration plus process variation.
///
/// # Example
///
/// ```
/// use rif_flash::{ErrorModel, PageKind, OperatingPoint};
///
/// let model = ErrorModel::calibrated();
/// let median = rif_flash::BlockProfile::median();
/// let fresh = model.rber_default(median, OperatingPoint::new(0, 0.0), PageKind::Csb);
/// let aged = model.rber_default(median, OperatingPoint::new(2000, 25.0), PageKind::Csb);
/// assert!(fresh < 0.0085 && aged > 0.0085);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorModel {
    tlc: TlcModel,
    default_refs: [f64; 7],
}

impl ErrorModel {
    /// The calibrated model (Fig. 4 anchors; see [`TlcModel::calibrated`]).
    pub fn calibrated() -> Self {
        Self::new(TlcModel::calibrated())
    }

    /// Wraps an arbitrary V_TH model.
    pub fn new(tlc: TlcModel) -> Self {
        let default_refs = tlc.default_refs();
        ErrorModel { tlc, default_refs }
    }

    /// The underlying V_TH model.
    pub fn tlc(&self) -> &TlcModel {
        &self.tlc
    }

    /// The manufacturer default read references.
    pub fn default_refs(&self) -> ReadVoltages {
        ReadVoltages::new(self.default_refs)
    }

    /// RBER of a page read at the default references.
    pub fn rber_default(&self, block: BlockProfile, op: OperatingPoint, kind: PageKind) -> f64 {
        self.tlc.rber(op, block.factor, &self.default_refs, kind)
    }

    /// RBER of a page re-read at *near-optimal* references (what an ideal
    /// retry achieves). This is the RBER for which tECC ≈ 1 µs in Table I.
    pub fn rber_optimal(&self, block: BlockProfile, op: OperatingPoint, kind: PageKind) -> f64 {
        let params = self.tlc.state_params(op, block.factor);
        let refs = self.tlc.optimal_refs(params);
        self.tlc.rber_with_params(&params, &refs, kind)
    }

    /// RBER of a page read at arbitrary references.
    pub fn rber_at(
        &self,
        block: BlockProfile,
        op: OperatingPoint,
        refs: ReadVoltages,
        kind: PageKind,
    ) -> f64 {
        self.tlc.rber(op, block.factor, refs.as_array(), kind)
    }

    /// Kind-averaged RBER at default references.
    pub fn rber_avg_default(&self, block: BlockProfile, op: OperatingPoint) -> f64 {
        self.tlc.rber_avg(op, block.factor, &self.default_refs)
    }

    /// The uniform V_REF offset that near-optimal references apply on
    /// average at this operating point: the mean over R1–R7 of
    /// (optimal − default). This is the scalar ground truth the online
    /// [`crate::learn::ThresholdLearner`] is judged against.
    pub fn optimal_offset(&self, block: BlockProfile, op: OperatingPoint) -> f64 {
        let params = self.tlc.state_params(op, block.factor);
        let optimal = self.tlc.optimal_refs(params);
        optimal
            .iter()
            .zip(&self.default_refs)
            .map(|(o, d)| o - d)
            .sum::<f64>()
            / 7.0
    }

    /// First retention day at which this block's kind-averaged RBER at the
    /// default references exceeds `cap`, searched up to `max_days`.
    /// Returns `None` if the block survives the whole horizon.
    pub fn days_to_exceed(
        &self,
        block: BlockProfile,
        pe_cycles: u32,
        cap: f64,
        max_days: f64,
    ) -> Option<f64> {
        let rber = |d: f64| self.rber_avg_default(block, OperatingPoint::new(pe_cycles, d));
        if rber(0.0) > cap {
            return Some(0.0);
        }
        if rber(max_days) <= cap {
            return None;
        }
        let (mut lo, mut hi) = (0.0, max_days);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if rber(mid) > cap {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

/// A baked per-block RBER lookup table: retention-day axis at a fixed P/E
/// count, one row per page kind, with linear interpolation — the exact
/// artifact the extended MQSim-E consults on every simulated page read.
#[derive(Debug, Clone)]
pub struct BlockErrorTable {
    pe_cycles: u32,
    max_days: f64,
    step_days: f64,
    /// `[kind][day_index]` RBER at default references.
    default: [Vec<f64>; 3],
    /// `[kind][day_index]` RBER at near-optimal references.
    optimal: [Vec<f64>; 3],
}

impl BlockErrorTable {
    /// Bakes a table for `block` at `pe_cycles`, covering retention ages
    /// `0..=max_days` at `step_days` resolution.
    ///
    /// # Panics
    ///
    /// Panics unless `max_days > 0` and `step_days > 0`.
    pub fn build(
        model: &ErrorModel,
        block: BlockProfile,
        pe_cycles: u32,
        max_days: f64,
        step_days: f64,
    ) -> Self {
        assert!(max_days > 0.0 && step_days > 0.0, "invalid table extent");
        let n = (max_days / step_days).ceil() as usize + 1;
        let mut default: [Vec<f64>; 3] = Default::default();
        let mut optimal: [Vec<f64>; 3] = Default::default();
        for (ki, &kind) in PageKind::ALL.iter().enumerate() {
            default[ki] = Vec::with_capacity(n);
            optimal[ki] = Vec::with_capacity(n);
            for i in 0..n {
                let day = (i as f64 * step_days).min(max_days);
                let op = OperatingPoint::new(pe_cycles, day);
                default[ki].push(model.rber_default(block, op, kind));
                optimal[ki].push(model.rber_optimal(block, op, kind));
            }
        }
        BlockErrorTable {
            pe_cycles,
            max_days,
            step_days,
            default,
            optimal,
        }
    }

    /// The P/E count this table was baked at.
    pub fn pe_cycles(&self) -> u32 {
        self.pe_cycles
    }

    fn lookup(&self, rows: &[Vec<f64>; 3], kind: PageKind, days: f64) -> f64 {
        let ki = PageKind::ALL.iter().position(|&k| k == kind).expect("kind");
        let row = &rows[ki];
        let clamped = days.clamp(0.0, self.max_days);
        let pos = clamped / self.step_days;
        let i = (pos.floor() as usize).min(row.len() - 1);
        let j = (i + 1).min(row.len() - 1);
        let frac = pos - i as f64;
        row[i] * (1.0 - frac) + row[j] * frac
    }

    /// Interpolated RBER at default references.
    pub fn rber_default(&self, kind: PageKind, retention_days: f64) -> f64 {
        self.lookup(&self.default, kind, retention_days)
    }

    /// Interpolated RBER at near-optimal references.
    pub fn rber_optimal(&self, kind: PageKind, retention_days: f64) -> f64 {
        self.lookup(&self.optimal, kind, retention_days)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_profiles_center_on_median() {
        let mut rng = SimRng::seed_from(1);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| BlockProfile::sample(&mut rng).factor)
            .sum::<f64>()
            / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean factor {mean}");
    }

    #[test]
    fn weak_blocks_fail_earlier() {
        let model = ErrorModel::calibrated();
        let strong = BlockProfile { factor: 0.7 };
        let weak = BlockProfile { factor: 1.6 };
        let ds = model.days_to_exceed(strong, 0, 0.0085, 150.0).unwrap();
        let dw = model.days_to_exceed(weak, 0, 0.0085, 150.0).unwrap();
        assert!(dw < ds, "weak {dw} vs strong {ds}");
    }

    #[test]
    fn fig4_median_anchors() {
        // Fig. 4: median crossing ≈17 days at 0 P/E, shrinking to ≈8 days
        // by 1000 P/E. Tolerances are generous — the paper's boxes span
        // several days themselves.
        let model = ErrorModel::calibrated();
        let m = BlockProfile::median();
        let d0 = model.days_to_exceed(m, 0, 0.0085, 60.0).unwrap();
        let d200 = model.days_to_exceed(m, 200, 0.0085, 60.0).unwrap();
        let d500 = model.days_to_exceed(m, 500, 0.0085, 60.0).unwrap();
        let d1000 = model.days_to_exceed(m, 1000, 0.0085, 60.0).unwrap();
        let d2000 = model.days_to_exceed(m, 2000, 0.0085, 60.0).unwrap();
        assert!((15.0..20.0).contains(&d0), "0K crossing {d0}");
        assert!((11.0..16.0).contains(&d200), "200 crossing {d200}");
        assert!((8.0..13.0).contains(&d500), "500 crossing {d500}");
        assert!((6.0..11.0).contains(&d1000), "1K crossing {d1000}");
        assert!(d2000 < d1000, "2K crossing {d2000}");
        assert!(d200 < d0 && d500 < d200 && d1000 < d500);
    }

    #[test]
    fn optimal_rber_much_lower_than_default_when_aged() {
        let model = ErrorModel::calibrated();
        let m = BlockProfile::median();
        let op = OperatingPoint::new(1000, 20.0);
        for kind in PageKind::ALL {
            let d = model.rber_default(m, op, kind);
            let o = model.rber_optimal(m, op, kind);
            assert!(o < d * 0.5, "{kind}: optimal {o} vs default {d}");
        }
    }

    #[test]
    fn table_matches_direct_evaluation_at_grid_points() {
        let model = ErrorModel::calibrated();
        let block = BlockProfile { factor: 1.2 };
        let table = BlockErrorTable::build(&model, block, 500, 30.0, 1.0);
        for day in [0.0, 7.0, 15.0, 30.0] {
            for kind in PageKind::ALL {
                let direct = model.rber_default(block, OperatingPoint::new(500, day), kind);
                let tab = table.rber_default(kind, day);
                assert!(
                    (direct - tab).abs() / direct.max(1e-9) < 1e-6,
                    "day {day} {kind}: {direct} vs {tab}"
                );
            }
        }
    }

    #[test]
    fn table_interpolates_between_grid_points() {
        let model = ErrorModel::calibrated();
        let block = BlockProfile::median();
        let table = BlockErrorTable::build(&model, block, 1000, 30.0, 1.0);
        let lo = table.rber_default(PageKind::Csb, 10.0);
        let mid = table.rber_default(PageKind::Csb, 10.5);
        let hi = table.rber_default(PageKind::Csb, 11.0);
        assert!(
            lo < mid && mid < hi,
            "interpolation not monotone: {lo} {mid} {hi}"
        );
        // Midpoint is the average of the endpoints under linear interpolation.
        assert!((mid - 0.5 * (lo + hi)).abs() < 1e-12);
    }

    #[test]
    fn table_clamps_out_of_range_days() {
        let model = ErrorModel::calibrated();
        let table = BlockErrorTable::build(&model, BlockProfile::median(), 0, 30.0, 1.0);
        assert_eq!(
            table.rber_default(PageKind::Lsb, -5.0),
            table.rber_default(PageKind::Lsb, 0.0)
        );
        assert_eq!(
            table.rber_default(PageKind::Lsb, 99.0),
            table.rber_default(PageKind::Lsb, 30.0)
        );
    }

    #[test]
    fn days_to_exceed_none_for_tiny_cap_horizon() {
        let model = ErrorModel::calibrated();
        let d = model.days_to_exceed(BlockProfile { factor: 0.55 }, 0, 0.5, 10.0);
        assert_eq!(d, None);
    }

    #[test]
    fn days_to_exceed_zero_retention_when_already_over_cap() {
        // A cap below the fresh-data RBER is exceeded at day zero exactly
        // (the early-out path, not a bisection result near zero).
        let model = ErrorModel::calibrated();
        let m = BlockProfile::median();
        let fresh = model.rber_avg_default(m, OperatingPoint::new(2000, 0.0));
        let d = model.days_to_exceed(m, 2000, fresh * 0.5, 60.0);
        assert_eq!(d, Some(0.0));
    }

    #[test]
    fn days_to_exceed_survives_max_pe_cycles() {
        // u32::MAX wear must not overflow or hang the bisection: the
        // block is hopeless immediately.
        let model = ErrorModel::calibrated();
        let d = model.days_to_exceed(BlockProfile::median(), u32::MAX, 0.0085, 60.0);
        assert_eq!(d, Some(0.0));
        // And the RBER itself stays a valid probability.
        let r = model.rber_avg_default(BlockProfile::median(), OperatingPoint::new(u32::MAX, 0.0));
        assert!((0.0..=0.5).contains(&r), "rber {r}");
    }

    #[test]
    fn rber_at_zero_retention_matches_default_refs() {
        let model = ErrorModel::calibrated();
        let m = BlockProfile::median();
        let op = OperatingPoint::new(1000, 0.0);
        for kind in PageKind::ALL {
            let via_at = model.rber_at(m, op, model.default_refs(), kind);
            let direct = model.rber_default(m, op, kind);
            assert_eq!(via_at, direct, "{kind}: rber_at diverged at defaults");
        }
    }

    #[test]
    fn rber_at_extreme_offsets_stays_a_probability() {
        // References anywhere inside the learner's valid window
        // [min_offset, max_offset] = [-0.6, 0.1] must yield finite RBER
        // in [0, 0.5] even on a weak, worn, month-old block — the model
        // guarantee the learner's clamp relies on.
        let model = ErrorModel::calibrated();
        let m = BlockProfile { factor: 2.2 };
        let op = OperatingPoint::new(2000, 30.0);
        for off in [-0.6, -0.3, 0.0, 0.1] {
            let refs = model.default_refs().offset_all(off);
            for kind in PageKind::ALL {
                let r = model.rber_at(m, op, refs, kind);
                assert!(
                    r.is_finite() && (0.0..=0.5).contains(&r),
                    "offset {off} {kind}: rber {r}"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn read_voltages_reject_out_of_range_level_index() {
        // Level indices are 1-based R1..R7; 0 (like 8) is a caller bug.
        let model = ErrorModel::calibrated();
        let _ = model.default_refs().get(0);
    }

    #[test]
    fn block_table_handles_max_pe_and_day_edges() {
        // 3000 P/E is the deepest wear stage any sweep drives; the table
        // must build there (optimal-ref Gaussian intersections included)
        // and clamp day lookups at both ends of the horizon.
        let model = ErrorModel::calibrated();
        let table = BlockErrorTable::build(&model, BlockProfile::median(), 3000, 30.0, 1.0);
        assert_eq!(table.pe_cycles(), 3000);
        for kind in PageKind::ALL {
            let r0 = table.rber_default(kind, 0.0);
            let r_neg = table.rber_default(kind, -1.0);
            let r_over = table.rber_default(kind, 1e9);
            assert_eq!(r0, r_neg, "{kind}: negative days must clamp to day 0");
            assert_eq!(
                r_over,
                table.rber_default(kind, 30.0),
                "{kind}: beyond-horizon days must clamp to max_days"
            );
            assert!(r0.is_finite() && (0.0..=0.5).contains(&r0));
        }
    }
}
