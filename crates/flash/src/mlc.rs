//! Generalized multi-level-cell V_TH model: TLC, QLC and beyond.
//!
//! The paper evaluates TLC, but its motivation explicitly extends to
//! denser cells ("3D TLC and QLC NAND flash memory", §VII) — Swift-Read
//! itself is a 4-bit/cell chip. [`MlcModel`] generalizes the TLC model of
//! [`crate::vth`] to `b` bits per cell: `2^b` Gaussian states share the
//! same physical V_TH window, so state spacing shrinks as `b` grows and
//! the same retention shift crosses the ECC capability far sooner — the
//! quantitative reason read-retry (and hence RiF) matters even more for
//! QLC.
//!
//! Pages are addressed by bit index (page `i` stores bit `i` of every
//! cell); a *balanced Gray code* distributes the `2^b − 1` read
//! references as evenly as possible across the pages, mirroring the
//! 2-3-2 TLC and 4-4-4-3 QLC schemes of real devices.

use rif_ldpc::model::normal_cdf;

use crate::vth::{OperatingPoint, StateParam};

/// A `b`-bit-per-cell V_TH model.
///
/// # Example
///
/// ```
/// use rif_flash::mlc::MlcModel;
/// use rif_flash::OperatingPoint;
///
/// let tlc = MlcModel::tlc();
/// let qlc = MlcModel::qlc();
/// // Same stress, same window: QLC's tighter states err far more.
/// let op = OperatingPoint::new(500, 5.0);
/// assert!(qlc.rber_avg(op, 1.0) > tlc.rber_avg(op, 1.0) * 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MlcModel {
    bits: usize,
    gray: Vec<u16>,
    /// Mean V_TH of each programmed state (state 0 is erased).
    means: Vec<f64>,
    sigma_prog: f64,
    sigma_erase: f64,
    retention_a: f64,
    wear_amp: f64,
    wear_exp: f64,
    state_gamma: f64,
    widen_pe: f64,
    widen_ret: f64,
}

impl MlcModel {
    /// The TLC instance, numerically equivalent to
    /// [`crate::vth::TlcModel::calibrated`] (cross-validated in tests).
    pub fn tlc() -> Self {
        Self::with_bits(3, 0.14)
    }

    /// The QLC instance: 16 states in the same V_TH window (state gap
    /// 3/7 of TLC's) with the tighter programming distributions
    /// (σ = 0.075) reported for 4-bit/cell devices.
    pub fn qlc() -> Self {
        Self::with_bits(4, 0.075)
    }

    /// An SLC-mode instance for hybrid-flash cache regions: TLC/QLC
    /// blocks programmed with 1 bit/cell. The single programmed state
    /// sits at the top of the shared V_TH window, so the erased/programmed
    /// gap is the full window and the RBER stays orders of magnitude
    /// below any multi-bit mode under the same stress laws.
    ///
    /// Built directly rather than via [`MlcModel::with_bits`]: the even
    /// spread formula needs ≥ 2 programmed states, and 1-bit cells stay
    /// rejected there by design.
    pub fn slc_like() -> Self {
        MlcModel {
            bits: 1,
            gray: vec![0, 1],
            means: vec![-1.0, 7.0],
            sigma_prog: 0.14,
            sigma_erase: 0.30,
            retention_a: 0.094,
            wear_amp: 0.28,
            wear_exp: 0.65,
            state_gamma: 0.5,
            widen_pe: 0.05,
            widen_ret: 0.02,
        }
    }

    /// Builds a `bits`-per-cell model sharing the calibrated TLC stress
    /// laws, with programmed states evenly spread over the TLC window
    /// `[1.0, 7.0]`.
    ///
    /// # Panics
    ///
    /// Panics unless `2 ≤ bits ≤ 8`.
    pub fn with_bits(bits: usize, sigma_prog: f64) -> Self {
        assert!((2..=8).contains(&bits), "bits per cell {bits} unsupported");
        let n_states = 1usize << bits;
        // Erased state at -1.0; programmed states 1..n-1 evenly over
        // [1.0, 7.0] (the TLC placement falls out exactly for b = 3).
        let mut means = vec![-1.0];
        let programmed = n_states - 1;
        for s in 1..=programmed {
            means.push(1.0 + 6.0 * (s as f64 - 1.0) / (programmed as f64 - 1.0));
        }
        MlcModel {
            bits,
            gray: balanced_gray(bits),
            means,
            sigma_prog,
            sigma_erase: 0.30,
            retention_a: 0.094,
            wear_amp: 0.28,
            wear_exp: 0.65,
            state_gamma: 0.5,
            widen_pe: 0.05,
            widen_ret: 0.02,
        }
    }

    /// Bits per cell.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Number of V_TH states.
    pub fn n_states(&self) -> usize {
        1 << self.bits
    }

    /// The Gray code word of `state`.
    pub fn gray_code(&self, state: usize) -> u16 {
        self.gray[state]
    }

    /// The bit page `page` stores for a cell in `state`.
    ///
    /// # Panics
    ///
    /// Panics when `page` or `state` is out of range.
    pub fn bit_of(&self, page: usize, state: usize) -> bool {
        assert!(page < self.bits, "page {page} out of range");
        (self.gray[state] >> page) & 1 == 1
    }

    /// The read-reference indices (1-based) page `page` uses: the state
    /// boundaries where its bit flips.
    pub fn refs_of(&self, page: usize) -> Vec<usize> {
        (1..self.n_states())
            .filter(|&s| self.bit_of(page, s - 1) != self.bit_of(page, s))
            .collect()
    }

    /// State distributions under stress (same laws as the TLC model).
    pub fn state_params(&self, op: OperatingPoint, process_factor: f64) -> Vec<StateParam> {
        let wear = 1.0 + self.wear_amp * (op.pe_cycles as f64 / 1000.0).powf(self.wear_exp);
        let ln_t = (1.0 + op.retention_days.max(0.0)).ln();
        let widen =
            1.0 + self.widen_pe * op.pe_cycles as f64 / 1000.0 + self.widen_ret * ln_t * wear;
        let top = (self.n_states() - 1) as f64;
        self.means
            .iter()
            .enumerate()
            .map(|(s, &mean)| {
                let shift = self.retention_a
                    * process_factor
                    * wear
                    * ln_t
                    * (s as f64 / top).powf(self.state_gamma);
                let sigma = if s == 0 {
                    self.sigma_erase
                } else {
                    self.sigma_prog
                };
                StateParam {
                    mean: mean - shift,
                    sigma: sigma * widen,
                }
            })
            .collect()
    }

    /// Default read references: the fresh equal-density boundaries.
    pub fn default_refs(&self) -> Vec<f64> {
        let params = self.state_params(OperatingPoint::fresh(), 1.0);
        (1..self.n_states())
            .map(|r| intersection(params[r - 1], params[r]))
            .collect()
    }

    /// RBER of page `page` at reference voltages `refs`.
    ///
    /// # Panics
    ///
    /// Panics unless `refs` has `2^b − 1` entries.
    pub fn rber(&self, op: OperatingPoint, process_factor: f64, refs: &[f64], page: usize) -> f64 {
        assert_eq!(refs.len(), self.n_states() - 1, "reference count mismatch");
        let params = self.state_params(op, process_factor);
        let bounds: Vec<f64> = self.refs_of(page).iter().map(|&r| refs[r - 1]).collect();
        let mut err = 0.0;
        let inv_states = 1.0 / self.n_states() as f64;
        for (s, p) in params.iter().enumerate() {
            let want = self.bit_of(page, s);
            let mut region_bit = self.bit_of(page, 0);
            let mut lo = f64::NEG_INFINITY;
            for &b in &bounds {
                if region_bit != want {
                    err += mass(p, lo, b) * inv_states;
                }
                lo = b;
                region_bit = !region_bit;
            }
            if region_bit != want {
                err += mass(p, lo, f64::INFINITY) * inv_states;
            }
        }
        err
    }

    /// Page-averaged RBER at the default references.
    pub fn rber_avg(&self, op: OperatingPoint, process_factor: f64) -> f64 {
        let refs = self.default_refs();
        (0..self.bits)
            .map(|p| self.rber(op, process_factor, &refs, p))
            .sum::<f64>()
            / self.bits as f64
    }

    /// First retention day where the page-averaged RBER exceeds `cap`,
    /// up to `max_days`.
    pub fn days_to_exceed(&self, pe_cycles: u32, cap: f64, max_days: f64) -> Option<f64> {
        let rber = |d: f64| self.rber_avg(OperatingPoint::new(pe_cycles, d), 1.0);
        if rber(0.0) > cap {
            return Some(0.0);
        }
        if rber(max_days) <= cap {
            return None;
        }
        let (mut lo, mut hi) = (0.0, max_days);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if rber(mid) > cap {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Some(0.5 * (lo + hi))
    }
}

fn mass(p: &StateParam, lo: f64, hi: f64) -> f64 {
    let cdf = |x: f64| {
        if x == f64::INFINITY {
            1.0
        } else if x == f64::NEG_INFINITY {
            0.0
        } else {
            normal_cdf((x - p.mean) / p.sigma)
        }
    };
    (cdf(hi) - cdf(lo)).max(0.0)
}

fn intersection(a: StateParam, b: StateParam) -> f64 {
    if (a.sigma - b.sigma).abs() < 1e-12 {
        return 0.5 * (a.mean + b.mean);
    }
    let (m1, s1, m2, s2) = (a.mean, a.sigma, b.mean, b.sigma);
    let qa = 1.0 / (s1 * s1) - 1.0 / (s2 * s2);
    let qb = -2.0 * (m1 / (s1 * s1) - m2 / (s2 * s2));
    let qc = m1 * m1 / (s1 * s1) - m2 * m2 / (s2 * s2) + 2.0 * (s1 / s2).ln();
    let disc = (qb * qb - 4.0 * qa * qc).max(0.0).sqrt();
    for r in [(-qb + disc) / (2.0 * qa), (-qb - disc) / (2.0 * qa)] {
        if r > m1 && r < m2 {
            return r;
        }
    }
    0.5 * (m1 + m2)
}

/// Builds a (near-)balanced non-cyclic Gray code on `bits` bits via
/// backtracking: adjacent codes differ in one bit and no bit carries more
/// than `ceil((2^b − 1)/b)` transitions — the 2-3-2 scheme for TLC and a
/// 4-4-4-3 scheme for QLC.
fn balanced_gray(bits: usize) -> Vec<u16> {
    let n = 1usize << bits;
    let budget = (n - 1).div_ceil(bits);
    let mut seq = vec![0u16];
    let mut used = vec![false; n];
    used[0] = true;
    let mut counts = vec![0usize; bits];
    fn go(
        seq: &mut Vec<u16>,
        used: &mut [bool],
        counts: &mut [usize],
        bits: usize,
        budget: usize,
    ) -> bool {
        if seq.len() == used.len() {
            return true;
        }
        let cur = *seq.last().expect("non-empty");
        // Prefer the least-used bit to keep the distribution balanced.
        let mut order: Vec<usize> = (0..bits).collect();
        order.sort_by_key(|&b| counts[b]);
        for b in order {
            if counts[b] >= budget {
                continue;
            }
            let next = cur ^ (1 << b);
            if used[next as usize] {
                continue;
            }
            used[next as usize] = true;
            counts[b] += 1;
            seq.push(next);
            if go(seq, used, counts, bits, budget) {
                return true;
            }
            seq.pop();
            counts[b] -= 1;
            used[next as usize] = false;
        }
        false
    }
    let ok = go(&mut seq, &mut used, &mut counts, bits, budget);
    assert!(ok, "no balanced Gray code found for {bits} bits");
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::PageKind;
    use crate::vth::TlcModel;

    #[test]
    fn gray_codes_are_gray_and_balanced() {
        for bits in 2..=5 {
            let g = balanced_gray(bits);
            assert_eq!(g.len(), 1 << bits);
            let mut seen = std::collections::HashSet::new();
            let mut counts = vec![0usize; bits];
            for w in g.windows(2) {
                let diff = w[0] ^ w[1];
                assert_eq!(diff.count_ones(), 1, "bits={bits}: non-Gray step");
                counts[diff.trailing_zeros() as usize] += 1;
            }
            for &c in &g {
                assert!(seen.insert(c), "bits={bits}: duplicate code");
            }
            let budget = ((1usize << bits) - 1).div_ceil(bits);
            for (b, &c) in counts.iter().enumerate() {
                assert!(c <= budget, "bits={bits}: bit {b} has {c} transitions");
            }
        }
    }

    #[test]
    fn tlc_ref_distribution_matches_232() {
        let m = MlcModel::tlc();
        let mut counts: Vec<usize> = (0..3).map(|p| m.refs_of(p).len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![2, 2, 3]);
    }

    #[test]
    fn qlc_ref_distribution_is_4443() {
        let m = MlcModel::qlc();
        let mut counts: Vec<usize> = (0..4).map(|p| m.refs_of(p).len()).collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![3, 4, 4, 4]);
    }

    #[test]
    fn tlc_instance_cross_validates_against_vth_model() {
        // The generic model with b = 3 must agree with the dedicated TLC
        // model on the page-averaged RBER (the Gray labeling differs per
        // page, but the average over pages is labeling-invariant).
        let generic = MlcModel::tlc();
        let dedicated = TlcModel::calibrated();
        let refs = dedicated.default_refs();
        for &(pe, days) in &[(0u32, 5.0), (500, 10.0), (2000, 15.0)] {
            let op = OperatingPoint::new(pe, days);
            let a = generic.rber_avg(op, 1.0);
            let b: f64 = PageKind::ALL
                .iter()
                .map(|&k| dedicated.rber(op, 1.0, &refs, k))
                .sum::<f64>()
                / 3.0;
            // Read disturb is not modelled in the generic version and the
            // reference sets differ minutely; agree within 15 %.
            assert!(
                (a - b).abs() / b.max(1e-9) < 0.15,
                "pe={pe} d={days}: generic {a} vs dedicated {b}"
            );
        }
    }

    #[test]
    fn qlc_crosses_capability_much_earlier_than_tlc() {
        // The §VII claim quantified: at the same wear, QLC's tighter
        // states cross the same ECC capability many times sooner.
        let tlc = MlcModel::tlc();
        let qlc = MlcModel::qlc();
        for pe in [0u32, 1000] {
            let dt = tlc.days_to_exceed(pe, 0.0085, 120.0).expect("TLC crossing");
            let dq = qlc.days_to_exceed(pe, 0.0085, 120.0).expect("QLC crossing");
            assert!(dq < dt / 2.5, "pe={pe}: QLC crossing {dq} not ≪ TLC {dt}");
        }
    }

    #[test]
    fn fresh_qlc_is_still_usable() {
        let qlc = MlcModel::qlc();
        let r = qlc.rber_avg(OperatingPoint::fresh(), 1.0);
        assert!(r < 0.0085, "fresh QLC RBER {r} already past the capability");
    }

    #[test]
    fn rber_monotone_in_stress_for_qlc() {
        let qlc = MlcModel::qlc();
        let mut last = 0.0;
        for days in [0.0, 1.0, 2.0, 4.0, 8.0] {
            let r = qlc.rber_avg(OperatingPoint::new(500, days), 1.0);
            assert!(r >= last);
            last = r;
        }
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn rejects_single_bit_cells() {
        let _ = MlcModel::with_bits(1, 0.1);
    }

    #[test]
    fn slc_like_is_orders_of_magnitude_more_reliable() {
        let slc = MlcModel::slc_like();
        let tlc = MlcModel::tlc();
        assert_eq!(slc.bits(), 1);
        assert_eq!(slc.refs_of(0), vec![1]);
        for &(pe, days) in &[(500u32, 10.0), (2000, 30.0)] {
            let op = OperatingPoint::new(pe, days);
            let rs = slc.rber_avg(op, 1.0);
            let rt = tlc.rber_avg(op, 1.0);
            assert!(
                rs < rt / 100.0,
                "pe={pe} d={days}: SLC RBER {rs} not ≪ TLC {rt}"
            );
        }
    }

    #[test]
    fn slc_like_never_crosses_capability_in_device_lifetime() {
        let slc = MlcModel::slc_like();
        assert_eq!(slc.days_to_exceed(3000, 0.0085, 365.0), None);
    }
}
