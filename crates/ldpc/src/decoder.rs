//! LDPC decoders: normalized min-sum (the channel-level ECC engine of the
//! paper) and Gallager-B bit flipping (a cheap hard-decision cross-check).
//!
//! The decoding-failure probability and iteration count of
//! [`MinSumDecoder`] as functions of RBER are exactly the curves of
//! Fig. 3; the iteration count maps onto the 1–20 µs tECC range of Table I.

use crate::bits::BitVec;
use crate::code::QcLdpcCode;

/// Result of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// True when the decoder converged to a valid codeword.
    pub success: bool,
    /// Number of message-passing (or bit-flipping) rounds executed.
    /// Zero when the input was already a codeword.
    pub iterations: u32,
    /// The decoder's final word (a codeword when `success`).
    pub decoded: BitVec,
}

/// Tanner-graph adjacency in CSR form, shared by both decoders.
#[derive(Debug, Clone)]
struct Graph {
    /// For each check, the index range into `chk_vars`.
    chk_ptr: Vec<u32>,
    /// Variable index of each edge, grouped by check.
    chk_vars: Vec<u32>,
    /// For each variable, the index range into `var_edges`.
    var_ptr: Vec<u32>,
    /// Edge indices (positions in `chk_vars`) grouped by variable.
    var_edges: Vec<u32>,
    n: usize,
    m: usize,
}

impl Graph {
    fn build(code: &QcLdpcCode) -> Graph {
        let h = code.matrix();
        let t = h.t();
        let m = h.m();
        let n = h.n();

        let mut chk_ptr = Vec::with_capacity(m + 1);
        let mut chk_vars: Vec<u32> = Vec::with_capacity(h.edge_count());
        let row_blocks: Vec<Vec<_>> = (0..h.rows_b())
            .map(|i| h.row_blocks(i).collect())
            .collect();
        chk_ptr.push(0);
        for i in 0..h.rows_b() {
            for k in 0..t {
                for b in &row_blocks[i] {
                    chk_vars.push(h.var_of(*b, k) as u32);
                }
                chk_ptr.push(chk_vars.len() as u32);
            }
        }

        // Invert to per-variable edge lists.
        let mut var_deg = vec![0u32; n];
        for &v in &chk_vars {
            var_deg[v as usize] += 1;
        }
        let mut var_ptr = vec![0u32; n + 1];
        for v in 0..n {
            var_ptr[v + 1] = var_ptr[v] + var_deg[v];
        }
        let mut cursor = var_ptr.clone();
        let mut var_edges = vec![0u32; chk_vars.len()];
        for (e, &v) in chk_vars.iter().enumerate() {
            var_edges[cursor[v as usize] as usize] = e as u32;
            cursor[v as usize] += 1;
        }

        Graph {
            chk_ptr,
            chk_vars,
            var_ptr,
            var_edges,
            n,
            m,
        }
    }

    /// True when `hard` (bit n set ⇒ bit value 1) satisfies every check.
    fn syndrome_clear(&self, hard: &BitVec) -> bool {
        for c in 0..self.m {
            let mut parity = false;
            for e in self.chk_ptr[c]..self.chk_ptr[c + 1] {
                parity ^= hard.get(self.chk_vars[e as usize] as usize);
            }
            if parity {
                return false;
            }
        }
        true
    }
}

/// Normalized min-sum decoder.
///
/// Messages are initialized from hard-channel LLRs (the magnitude is
/// irrelevant to min-sum up to scaling, so ±1 is used) and check updates are
/// damped by a normalization factor α = 0.75, the standard choice for
/// near-sum-product performance at hardware cost.
///
/// # Example
///
/// ```
/// use rif_ldpc::{QcLdpcCode, decoder::MinSumDecoder, channel::Bsc, bits::BitVec};
/// use rif_events::SimRng;
///
/// let code = QcLdpcCode::small_test();
/// let mut rng = SimRng::seed_from(4);
/// let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
/// let noisy = Bsc::new(0.003).corrupt(&cw, &mut rng);
/// let out = MinSumDecoder::new(&code).decode(&noisy);
/// assert!(out.success);
/// assert_eq!(out.decoded, cw);
/// ```
#[derive(Debug, Clone)]
pub struct MinSumDecoder {
    graph: Graph,
    max_iterations: u32,
    alpha: f32,
}

/// The paper's decoder iteration cap (§II-B1: "a preset maximum number of
/// iterations (e.g., 20)").
pub const PAPER_MAX_ITERATIONS: u32 = 20;

impl MinSumDecoder {
    /// Builds a decoder for `code` with the paper's 20-iteration cap.
    pub fn new(code: &QcLdpcCode) -> Self {
        Self::with_max_iterations(code, PAPER_MAX_ITERATIONS)
    }

    /// Builds a decoder with a custom iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn with_max_iterations(code: &QcLdpcCode, max_iterations: u32) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        MinSumDecoder {
            graph: Graph::build(code),
            max_iterations,
            alpha: 0.75,
        }
    }

    /// The iteration cap.
    pub fn max_iterations(&self) -> u32 {
        self.max_iterations
    }

    /// Decodes a received hard-decision word.
    pub fn decode(&self, received: &BitVec) -> DecodeOutcome {
        assert_eq!(received.len(), self.graph.n, "received word length mismatch");
        // Channel LLRs: +1 for received 0, -1 for received 1.
        let llr: Vec<f32> = (0..self.graph.n)
            .map(|v| if received.get(v) { -1.0 } else { 1.0 })
            .collect();
        self.decode_llr(&llr)
    }

    /// Decodes from per-bit channel log-likelihood ratios (positive =
    /// leaning 0). This is the soft-decision entry point used when the
    /// flash senses a page at several reference offsets to refine each
    /// bit's reliability; soft inputs decode well beyond the
    /// hard-decision capability.
    ///
    /// # Panics
    ///
    /// Panics if `llr` is not codeword-length.
    pub fn decode_llr(&self, llr: &[f32]) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(llr.len(), g.n, "LLR vector length mismatch");

        let mut hard = BitVec::zeros(g.n);
        for (v, &l) in llr.iter().enumerate() {
            hard.set(v, l < 0.0);
        }
        if g.syndrome_clear(&hard) {
            return DecodeOutcome {
                success: true,
                iterations: 0,
                decoded: hard,
            };
        }

        let edges = g.chk_vars.len();
        let mut c2v = vec![0.0f32; edges];
        let mut total = llr.to_vec();

        for iter in 1..=self.max_iterations {
            // Check-node update using the two-minimum trick.
            for c in 0..g.m {
                let lo = g.chk_ptr[c] as usize;
                let hi = g.chk_ptr[c + 1] as usize;
                let mut sign_prod = 1.0f32;
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min1_edge = lo;
                for e in lo..hi {
                    let v2c = total[g.chk_vars[e] as usize] - c2v[e];
                    let mag = v2c.abs();
                    if v2c < 0.0 {
                        sign_prod = -sign_prod;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_edge = e;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for e in lo..hi {
                    let v2c = total[g.chk_vars[e] as usize] - c2v[e];
                    let sign_self = if v2c < 0.0 { -1.0 } else { 1.0 };
                    let mag = if e == min1_edge { min2 } else { min1 };
                    c2v[e] = self.alpha * sign_prod * sign_self * mag;
                }
            }

            // Variable-node totals and hard decision.
            for v in 0..g.n {
                let mut sum = llr[v];
                for idx in g.var_ptr[v]..g.var_ptr[v + 1] {
                    sum += c2v[g.var_edges[idx as usize] as usize];
                }
                total[v] = sum;
                hard.set(v, sum < 0.0);
            }

            if g.syndrome_clear(&hard) {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: hard,
                };
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: hard,
        }
    }
}

/// Gallager-B hard-decision bit-flipping decoder.
///
/// Flips every bit whose unsatisfied-check count reaches a majority of its
/// degree. Much weaker than min-sum (it corrects roughly an order of
/// magnitude fewer errors) but useful as an independent correctness check
/// of the code construction.
#[derive(Debug, Clone)]
pub struct BitFlipDecoder {
    graph: Graph,
    max_iterations: u32,
}

impl BitFlipDecoder {
    /// Builds a bit-flipping decoder with the paper's 20-iteration cap.
    pub fn new(code: &QcLdpcCode) -> Self {
        Self::with_max_iterations(code, PAPER_MAX_ITERATIONS)
    }

    /// Builds a bit-flipping decoder with a custom iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn with_max_iterations(code: &QcLdpcCode, max_iterations: u32) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        BitFlipDecoder {
            graph: Graph::build(code),
            max_iterations,
        }
    }

    /// Decodes a received hard-decision word.
    pub fn decode(&self, received: &BitVec) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(received.len(), g.n, "received word length mismatch");
        let mut word = received.clone();
        let mut unsat = vec![0u8; g.n];

        for iter in 0..=self.max_iterations {
            // Count unsatisfied checks per variable.
            unsat.fill(0);
            let mut any = false;
            for c in 0..g.m {
                let lo = g.chk_ptr[c] as usize;
                let hi = g.chk_ptr[c + 1] as usize;
                let mut parity = false;
                for e in lo..hi {
                    parity ^= word.get(g.chk_vars[e] as usize);
                }
                if parity {
                    any = true;
                    for e in lo..hi {
                        unsat[g.chk_vars[e] as usize] += 1;
                    }
                }
            }
            if !any {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: word,
                };
            }
            if iter == self.max_iterations {
                break;
            }
            // Flip strict majorities.
            let mut flipped = false;
            for v in 0..g.n {
                let deg = (g.var_ptr[v + 1] - g.var_ptr[v]) as u8;
                if unsat[v] * 2 > deg {
                    word.flip(v);
                    flipped = true;
                }
            }
            if !flipped {
                // Stuck: no strict majority anywhere.
                break;
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Bsc;
    use rif_events::SimRng;

    fn setup() -> (QcLdpcCode, BitVec, SimRng) {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(21);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        (code, cw, rng)
    }

    #[test]
    fn clean_input_decodes_in_zero_iterations() {
        let (code, cw, _) = setup();
        let out = MinSumDecoder::new(&code).decode(&cw);
        assert!(out.success);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.decoded, cw);
    }

    #[test]
    fn minsum_corrects_scattered_errors() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        // small_test has n = 2304; 0.3% RBER ≈ 7 errors.
        for _ in 0..10 {
            let noisy = Bsc::new(0.003).corrupt(&cw, &mut rng);
            let out = dec.decode(&noisy);
            assert!(out.success, "failed to decode {} errors", cw.hamming_distance(&noisy));
            assert_eq!(out.decoded, cw);
            assert!(out.iterations >= 1);
        }
    }

    #[test]
    fn minsum_fails_on_hopeless_input() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let noisy = Bsc::new(0.08).corrupt(&cw, &mut rng);
        let out = dec.decode(&noisy);
        assert!(!out.success);
        assert_eq!(out.iterations, dec.max_iterations());
    }

    #[test]
    fn iterations_grow_with_error_count() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let avg_iters = |p: f64, rng: &mut SimRng| -> f64 {
            let mut total = 0u32;
            let trials = 20;
            for _ in 0..trials {
                let noisy = Bsc::new(p).corrupt(&cw, rng);
                total += dec.decode(&noisy).iterations;
            }
            total as f64 / trials as f64
        };
        let low = avg_iters(0.001, &mut rng);
        let high = avg_iters(0.006, &mut rng);
        assert!(high > low, "iterations did not grow: {low} vs {high}");
    }

    #[test]
    fn bitflip_corrects_few_errors() {
        let (code, cw, mut rng) = setup();
        let dec = BitFlipDecoder::new(&code);
        for _ in 0..10 {
            let noisy = Bsc::corrupt_exact(&cw, 2, &mut rng);
            let out = dec.decode(&noisy);
            assert!(out.success, "bit flip failed on 2 errors");
            assert_eq!(out.decoded, cw);
        }
    }

    #[test]
    fn bitflip_clean_input() {
        let (code, cw, _) = setup();
        let out = BitFlipDecoder::new(&code).decode(&cw);
        assert!(out.success);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn minsum_outperforms_bitflip() {
        let (code, cw, mut rng) = setup();
        let ms = MinSumDecoder::new(&code);
        let bf = BitFlipDecoder::new(&code);
        let k = 12; // beyond Gallager-B comfort, fine for min-sum
        let mut ms_wins = 0;
        let mut bf_wins = 0;
        for _ in 0..20 {
            let noisy = Bsc::corrupt_exact(&cw, k, &mut rng);
            if ms.decode(&noisy).success {
                ms_wins += 1;
            }
            if bf.decode(&noisy).success {
                bf_wins += 1;
            }
        }
        assert!(ms_wins >= bf_wins, "min-sum {ms_wins} < bit-flip {bf_wins}");
        assert!(ms_wins >= 15, "min-sum too weak: {ms_wins}/20");
    }

    #[test]
    fn decode_is_deterministic() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let noisy = Bsc::new(0.005).corrupt(&cw, &mut rng);
        let a = dec.decode(&noisy);
        let b = dec.decode(&noisy);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_cap_rejected() {
        let code = QcLdpcCode::small_test();
        let _ = MinSumDecoder::with_max_iterations(&code, 0);
    }
}
