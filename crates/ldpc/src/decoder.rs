//! LDPC decoders: normalized min-sum (the channel-level ECC engine of the
//! paper) and Gallager-B bit flipping (a cheap hard-decision cross-check).
//!
//! The decoding-failure probability and iteration count of
//! [`MinSumDecoder`] as functions of RBER are exactly the curves of
//! Fig. 3; the iteration count maps onto the 1–20 µs tECC range of Table I.
//!
//! Both decoders run a word-packed fast path: the per-iteration syndrome
//! check exploits the quasi-cyclic structure (each circulant `Q(s)` applied
//! to a 64-bit-packed segment is a rotate-XOR, the same trick as
//! [`QcLdpcCode::syndrome`]) instead of touching the `m × row_weight` edges
//! one bit at a time, and the min-sum check-node update buffers each `v2c`
//! message so it is computed once per iteration rather than twice. The
//! straightforward per-edge implementations are kept as
//! [`MinSumDecoder::decode_llr_reference`] and
//! [`BitFlipDecoder::decode_reference`]; the fast paths are bit-identical
//! to them (see the golden-equivalence suite in `tests/`).

use crate::bits::BitVec;
use crate::code::QcLdpcCode;

/// Result of a decoding attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeOutcome {
    /// True when the decoder converged to a valid codeword.
    pub success: bool,
    /// Number of message-passing (or bit-flipping) rounds executed.
    /// Zero when the input was already a codeword.
    pub iterations: u32,
    /// The decoder's final word (a codeword when `success`).
    pub decoded: BitVec,
}

/// Tanner-graph adjacency in CSR form, shared by both decoders, plus the
/// quasi-cyclic block structure used by the word-packed syndrome check
/// and the block-major min-sum kernel.
#[derive(Debug, Clone)]
struct Graph {
    /// For each check, the index range into `chk_vars`.
    chk_ptr: Vec<u32>,
    /// Variable index of each edge, grouped by check.
    chk_vars: Vec<u32>,
    /// For each variable, the index range into `var_edges`.
    var_ptr: Vec<u32>,
    /// Edge indices (positions in `chk_vars`) grouped by variable.
    var_edges: Vec<u32>,
    /// `(col, shift)` of each block, grouped by block row — the circulant
    /// structure backing the rotate-XOR syndrome.
    block_rows: Vec<Vec<(usize, usize)>>,
    /// `(col, shift, msg_offset)` per block, grouped by block row:
    /// `msg_offset` is the block's `t`-float slab in the edge-major
    /// message array of the fast min-sum path.
    plan_rows: Vec<Vec<(usize, usize, usize)>>,
    /// `(msg_offset, shift)` per block, grouped by column block in
    /// ascending block-row order — the transpose of `plan_rows`, driving
    /// the variable-node pass.
    plan_cols: Vec<Vec<(usize, usize)>>,
    /// Widest block row (blocks), sizing the per-row scratch buffer.
    max_row_blocks: usize,
    /// Total message floats (`block count × t`).
    edge_floats: usize,
    /// Circulant size (a multiple of 64).
    t: usize,
    n: usize,
    m: usize,
}

impl Graph {
    fn build(code: &QcLdpcCode) -> Graph {
        let h = code.matrix();
        let t = h.t();
        let m = h.m();
        let n = h.n();

        let mut chk_ptr = Vec::with_capacity(m + 1);
        let mut chk_vars: Vec<u32> = Vec::with_capacity(h.edge_count());
        let row_blocks: Vec<Vec<_>> = (0..h.rows_b()).map(|i| h.row_blocks(i).collect()).collect();
        chk_ptr.push(0);
        for i in 0..h.rows_b() {
            for k in 0..t {
                for b in &row_blocks[i] {
                    chk_vars.push(h.var_of(*b, k) as u32);
                }
                chk_ptr.push(chk_vars.len() as u32);
            }
        }

        // Invert to per-variable edge lists.
        let mut var_deg = vec![0u32; n];
        for &v in &chk_vars {
            var_deg[v as usize] += 1;
        }
        let mut var_ptr = vec![0u32; n + 1];
        for v in 0..n {
            var_ptr[v + 1] = var_ptr[v] + var_deg[v];
        }
        let mut cursor = var_ptr.clone();
        let mut var_edges = vec![0u32; chk_vars.len()];
        for (e, &v) in chk_vars.iter().enumerate() {
            var_edges[cursor[v as usize] as usize] = e as u32;
            cursor[v as usize] += 1;
        }

        let block_rows: Vec<Vec<(usize, usize)>> = row_blocks
            .iter()
            .map(|row| row.iter().map(|b| (b.col, b.shift % t)).collect())
            .collect();

        // Edge-major plan: one t-float message slab per block, row-major,
        // plus the per-column transpose in ascending block-row order (the
        // order the reference variable pass accumulates in).
        let mut plan_rows = Vec::with_capacity(block_rows.len());
        let mut plan_cols: Vec<Vec<(usize, usize)>> = vec![Vec::new(); h.cols_b()];
        let mut offset = 0usize;
        for row in &block_rows {
            let mut planned = Vec::with_capacity(row.len());
            for &(col, shift) in row {
                planned.push((col, shift, offset));
                plan_cols[col].push((offset, shift));
                offset += t;
            }
            plan_rows.push(planned);
        }
        let max_row_blocks = block_rows.iter().map(|r| r.len()).max().unwrap_or(0);

        Graph {
            chk_ptr,
            chk_vars,
            var_ptr,
            var_edges,
            block_rows,
            plan_rows,
            plan_cols,
            max_row_blocks,
            edge_floats: offset,
            t,
            n,
            m,
        }
    }

    /// True when `hard` (bit n set ⇒ bit value 1) satisfies every check.
    /// Reference implementation: one `BitVec::get` per edge.
    fn syndrome_clear(&self, hard: &BitVec) -> bool {
        for c in 0..self.m {
            let mut parity = false;
            for e in self.chk_ptr[c]..self.chk_ptr[c + 1] {
                parity ^= hard.get(self.chk_vars[e as usize] as usize);
            }
            if parity {
                return false;
            }
        }
        true
    }

    /// Word-packed equivalent of [`Graph::syndrome_clear`]: per block row,
    /// XOR the rotated word-packed segments (circulant `Q(s)` ≡ rotate
    /// left by `s`) and bail out on the first nonzero syndrome word.
    fn syndrome_clear_words(&self, hard: &[u64]) -> bool {
        debug_assert_eq!(hard.len() * 64, self.n);
        let tw = self.t / 64;
        let mut acc = vec![0u64; tw];
        for row in &self.block_rows {
            acc.fill(0);
            for &(col, shift) in row {
                let seg = &hard[col * tw..(col + 1) * tw];
                xor_rotated(&mut acc, seg, shift);
            }
            if acc.iter().any(|&w| w != 0) {
                return false;
            }
        }
        true
    }

    /// Block-row syndromes of `hard` into `out` (`rows_b × t/64` words),
    /// returning true when any check is unsatisfied.
    fn block_syndromes(&self, hard: &[u64], out: &mut [u64]) -> bool {
        let tw = self.t / 64;
        out.fill(0);
        let mut any = 0u64;
        for (i, row) in self.block_rows.iter().enumerate() {
            let acc = &mut out[i * tw..(i + 1) * tw];
            for &(col, shift) in row {
                let seg = &hard[col * tw..(col + 1) * tw];
                xor_rotated(acc, seg, shift);
            }
            any |= acc.iter().fold(0, |a, &w| a | w);
        }
        any != 0
    }
}

/// XORs `seg` rotated left by `shift` bits into `acc` (both `t/64` words).
/// Output bit `k` of the rotation is input bit `(k + shift) mod t`.
#[inline]
fn xor_rotated(acc: &mut [u64], seg: &[u64], shift: usize) {
    let nw = seg.len();
    let ws = shift / 64;
    let bs = shift % 64;
    if bs == 0 {
        for (w, a) in acc.iter_mut().enumerate() {
            *a ^= seg[(w + ws) % nw];
        }
    } else {
        for (w, a) in acc.iter_mut().enumerate() {
            let lo = seg[(w + ws) % nw];
            let hi = seg[(w + ws + 1) % nw];
            *a ^= (lo >> bs) | (hi << (64 - bs));
        }
    }
}

/// Normalized min-sum decoder.
///
/// Messages are initialized from hard-channel LLRs (the magnitude is
/// irrelevant to min-sum up to scaling, so ±1 is used) and check updates are
/// damped by a normalization factor α = 0.75, the standard choice for
/// near-sum-product performance at hardware cost.
///
/// # Example
///
/// ```
/// use rif_ldpc::{QcLdpcCode, decoder::MinSumDecoder, channel::Bsc, bits::BitVec};
/// use rif_events::SimRng;
///
/// let code = QcLdpcCode::small_test();
/// let mut rng = SimRng::seed_from(4);
/// let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
/// let noisy = Bsc::new(0.003).corrupt(&cw, &mut rng);
/// let out = MinSumDecoder::new(&code).decode(&noisy);
/// assert!(out.success);
/// assert_eq!(out.decoded, cw);
/// ```
#[derive(Debug, Clone)]
pub struct MinSumDecoder {
    graph: Graph,
    max_iterations: u32,
    alpha: f32,
}

/// The paper's decoder iteration cap (§II-B1: "a preset maximum number of
/// iterations (e.g., 20)").
pub const PAPER_MAX_ITERATIONS: u32 = 20;

impl MinSumDecoder {
    /// Builds a decoder for `code` with the paper's 20-iteration cap.
    pub fn new(code: &QcLdpcCode) -> Self {
        Self::with_max_iterations(code, PAPER_MAX_ITERATIONS)
    }

    /// Builds a decoder with a custom iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn with_max_iterations(code: &QcLdpcCode, max_iterations: u32) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        MinSumDecoder {
            graph: Graph::build(code),
            max_iterations,
            alpha: 0.75,
        }
    }

    /// The iteration cap.
    pub fn max_iterations(&self) -> u32 {
        self.max_iterations
    }

    /// Decodes a received hard-decision word.
    pub fn decode(&self, received: &BitVec) -> DecodeOutcome {
        self.decode_llr(&self.hard_llr(received))
    }

    /// Reference-path twin of [`MinSumDecoder::decode`].
    pub fn decode_reference(&self, received: &BitVec) -> DecodeOutcome {
        self.decode_llr_reference(&self.hard_llr(received))
    }

    /// Channel LLRs for a hard-decision word: +1 for received 0, -1 for 1.
    fn hard_llr(&self, received: &BitVec) -> Vec<f32> {
        assert_eq!(
            received.len(),
            self.graph.n,
            "received word length mismatch"
        );
        (0..self.graph.n)
            .map(|v| if received.get(v) { -1.0 } else { 1.0 })
            .collect()
    }

    /// Decodes from per-bit channel log-likelihood ratios (positive =
    /// leaning 0). This is the soft-decision entry point used when the
    /// flash senses a page at several reference offsets to refine each
    /// bit's reliability; soft inputs decode well beyond the
    /// hard-decision capability.
    ///
    /// Fast path. The kernel works block-major on the quasi-cyclic
    /// structure instead of walking CSR edge lists:
    ///
    /// * messages live in one `t`-float slab per circulant, so every
    ///   access below is a sequential slice walk (split in two at the
    ///   rotation point) rather than a per-edge gather;
    /// * each `v2c` message is computed once per iteration and buffered —
    ///   the sign/two-min scan and the output scan share it;
    /// * the two-min/sign tracking is select-based (no branches), over
    ///   `t` independent lanes at a time;
    /// * the convergence test is the word-packed rotate-XOR syndrome.
    ///
    /// Every float is produced by the same operands in the same order as
    /// [`MinSumDecoder::decode_llr_reference`], so outcomes are
    /// bit-identical (golden suite in `tests/`).
    ///
    /// # Panics
    ///
    /// Panics if `llr` is not codeword-length.
    pub fn decode_llr(&self, llr: &[f32]) -> DecodeOutcome {
        // The kernel is all independent-lane selects, abs, min and adds —
        // exactly the shape LLVM vectorizes — but the baseline x86-64
        // target only has SSE2. Compile the same body a second time with
        // AVX2 enabled and pick at runtime; per-lane float ops are exact,
        // so both instantiations produce bit-identical outcomes.
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: the avx2 cpuid bit was just checked.
            return unsafe { self.decode_llr_avx2(llr) };
        }
        self.decode_llr_impl(llr)
    }

    /// AVX2 instantiation of [`MinSumDecoder::decode_llr_impl`].
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn decode_llr_avx2(&self, llr: &[f32]) -> DecodeOutcome {
        self.decode_llr_impl(llr)
    }

    #[inline(always)]
    fn decode_llr_impl(&self, llr: &[f32]) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(llr.len(), g.n, "LLR vector length mismatch");
        let t = g.t;

        let nw = g.n / 64;
        let mut hard = vec![0u64; nw];
        pack_hard(llr, &mut hard);
        if g.syndrome_clear_words(&hard) {
            return DecodeOutcome {
                success: true,
                iterations: 0,
                decoded: BitVec::from_words(hard, g.n),
            };
        }

        let mut c2v = vec![0.0f32; g.edge_floats];
        let mut total = llr.to_vec();
        // Per-block-row scratch: buffered v2c messages plus the per-check
        // sign product, two minima and argmin slot, t lanes each.
        let mut v2c = vec![0.0f32; g.max_row_blocks * t];
        let mut sign = vec![0.0f32; t];
        let mut min1 = vec![0.0f32; t];
        let mut min2 = vec![0.0f32; t];
        let mut slot = vec![0u32; t];

        for iter in 1..=self.max_iterations {
            for row in &g.plan_rows {
                // v2c = rotated total segment minus the stored message;
                // the rotation makes both reads sequential (two runs).
                for (b, &(col, shift, off)) in row.iter().enumerate() {
                    let msg = &c2v[off..off + t];
                    let tot = &total[col * t..(col + 1) * t];
                    let buf = &mut v2c[b * t..(b + 1) * t];
                    let split = t - shift;
                    let (buf_lo, buf_hi) = buf.split_at_mut(split);
                    let (msg_lo, msg_hi) = msg.split_at(split);
                    for ((o, &m), &tv) in buf_lo.iter_mut().zip(msg_lo).zip(&tot[shift..]) {
                        *o = tv - m;
                    }
                    for ((o, &m), &tv) in buf_hi.iter_mut().zip(msg_hi).zip(&tot[..shift]) {
                        *o = tv - m;
                    }
                }
                // Fused sign/two-min scan across the row's blocks, t
                // checks per lane-sweep, all selects.
                sign.fill(1.0);
                min1.fill(f32::INFINITY);
                min2.fill(f32::INFINITY);
                slot.fill(0);
                for (b, buf) in v2c.chunks_exact(t).take(row.len()).enumerate() {
                    let lanes = buf
                        .iter()
                        .zip(sign.iter_mut())
                        .zip(min1.iter_mut().zip(min2.iter_mut()))
                        .zip(slot.iter_mut());
                    for (((&m, sg), (m1, m2)), sl) in lanes {
                        let mag = m.abs();
                        *sg = if m < 0.0 { -*sg } else { *sg };
                        let better = mag < *m1;
                        *m2 = if better { *m1 } else { m2.min(mag) };
                        *m1 = if better { mag } else { *m1 };
                        *sl = if better { b as u32 } else { *sl };
                    }
                }
                // Output scan reuses the buffered v2c for its sign.
                for (b, &(_, _, off)) in row.iter().enumerate() {
                    let buf = &v2c[b * t..(b + 1) * t];
                    let msg = &mut c2v[off..off + t];
                    let lanes = buf
                        .iter()
                        .zip(msg.iter_mut())
                        .zip(sign.iter().zip(slot.iter()))
                        .zip(min1.iter().zip(min2.iter()));
                    for (((&v, out), (&sg, &sl)), (&m1, &m2)) in lanes {
                        let base = self.alpha * sg;
                        let sign_self = if v < 0.0 { -1.0 } else { 1.0 };
                        let mag = if sl == b as u32 { m2 } else { m1 };
                        *out = base * sign_self * mag;
                    }
                }
            }

            // Variable-node totals: per column block, the channel LLR plus
            // each incident message slab rotated back into variable order
            // (ascending block row — the reference accumulation order).
            for (j, col_blocks) in g.plan_cols.iter().enumerate() {
                let lo = j * t;
                total[lo..lo + t].copy_from_slice(&llr[lo..lo + t]);
                for &(off, shift) in col_blocks {
                    let msg = &c2v[off..off + t];
                    let s = (t - shift) % t;
                    let seg = &mut total[lo..lo + t];
                    let split = t - s;
                    let (seg_lo, seg_hi) = seg.split_at_mut(split);
                    for (o, &m) in seg_lo.iter_mut().zip(&msg[s..]) {
                        *o += m;
                    }
                    for (o, &m) in seg_hi.iter_mut().zip(&msg[..s]) {
                        *o += m;
                    }
                }
            }

            // Word-packed hard decision and syndrome check.
            for (w, h) in hard.iter_mut().enumerate() {
                let mut word = 0u64;
                for b in 0..64 {
                    word |= u64::from(total[w * 64 + b] < 0.0) << b;
                }
                *h = word;
            }
            if g.syndrome_clear_words(&hard) {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: BitVec::from_words(hard, g.n),
                };
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: BitVec::from_words(hard, g.n),
        }
    }

    /// Straightforward per-edge implementation kept as the correctness
    /// reference for [`MinSumDecoder::decode_llr`]: each `v2c` message is
    /// recomputed in the output scan and the convergence test walks the
    /// edges one `BitVec::get` at a time.
    ///
    /// # Panics
    ///
    /// Panics if `llr` is not codeword-length.
    pub fn decode_llr_reference(&self, llr: &[f32]) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(llr.len(), g.n, "LLR vector length mismatch");

        let mut hard = BitVec::zeros(g.n);
        for (v, &l) in llr.iter().enumerate() {
            hard.set(v, l < 0.0);
        }
        if g.syndrome_clear(&hard) {
            return DecodeOutcome {
                success: true,
                iterations: 0,
                decoded: hard,
            };
        }

        let edges = g.chk_vars.len();
        let mut c2v = vec![0.0f32; edges];
        let mut total = llr.to_vec();

        for iter in 1..=self.max_iterations {
            // Check-node update using the two-minimum trick.
            for c in 0..g.m {
                let lo = g.chk_ptr[c] as usize;
                let hi = g.chk_ptr[c + 1] as usize;
                let mut sign_prod = 1.0f32;
                let mut min1 = f32::INFINITY;
                let mut min2 = f32::INFINITY;
                let mut min1_edge = lo;
                for e in lo..hi {
                    let v2c = total[g.chk_vars[e] as usize] - c2v[e];
                    let mag = v2c.abs();
                    if v2c < 0.0 {
                        sign_prod = -sign_prod;
                    }
                    if mag < min1 {
                        min2 = min1;
                        min1 = mag;
                        min1_edge = e;
                    } else if mag < min2 {
                        min2 = mag;
                    }
                }
                for e in lo..hi {
                    let v2c = total[g.chk_vars[e] as usize] - c2v[e];
                    let sign_self = if v2c < 0.0 { -1.0 } else { 1.0 };
                    let mag = if e == min1_edge { min2 } else { min1 };
                    c2v[e] = self.alpha * sign_prod * sign_self * mag;
                }
            }

            // Variable-node totals and hard decision.
            for v in 0..g.n {
                let mut sum = llr[v];
                for idx in g.var_ptr[v]..g.var_ptr[v + 1] {
                    sum += c2v[g.var_edges[idx as usize] as usize];
                }
                total[v] = sum;
                hard.set(v, sum < 0.0);
            }

            if g.syndrome_clear(&hard) {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: hard,
                };
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: hard,
        }
    }
}

/// Packs the sign bits of `llr` into `hard` (bit set ⇔ LLR < 0 ⇔ bit 1).
fn pack_hard(llr: &[f32], hard: &mut [u64]) {
    for (w, h) in hard.iter_mut().enumerate() {
        let mut word = 0u64;
        for b in 0..64 {
            word |= u64::from(llr[w * 64 + b] < 0.0) << b;
        }
        *h = word;
    }
}

/// Gallager-B hard-decision bit-flipping decoder.
///
/// Flips every bit whose unsatisfied-check count reaches a majority of its
/// degree. Much weaker than min-sum (it corrects roughly an order of
/// magnitude fewer errors) but useful as an independent correctness check
/// of the code construction.
#[derive(Debug, Clone)]
pub struct BitFlipDecoder {
    graph: Graph,
    max_iterations: u32,
}

impl BitFlipDecoder {
    /// Builds a bit-flipping decoder with the paper's 20-iteration cap.
    pub fn new(code: &QcLdpcCode) -> Self {
        Self::with_max_iterations(code, PAPER_MAX_ITERATIONS)
    }

    /// Builds a bit-flipping decoder with a custom iteration cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_iterations` is zero.
    pub fn with_max_iterations(code: &QcLdpcCode, max_iterations: u32) -> Self {
        assert!(max_iterations > 0, "need at least one iteration");
        BitFlipDecoder {
            graph: Graph::build(code),
            max_iterations,
        }
    }

    /// Decodes a received hard-decision word.
    ///
    /// Fast path: parities come from the word-packed rotate-XOR block-row
    /// syndrome, and only the set syndrome bits (unsatisfied checks) fan
    /// out to per-variable counters — satisfied checks cost nothing.
    pub fn decode(&self, received: &BitVec) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(received.len(), g.n, "received word length mismatch");
        let tw = g.t / 64;
        let mut word = received.clone();
        let mut unsat = vec![0u8; g.n];
        let mut syn = vec![0u64; g.block_rows.len() * tw];

        for iter in 0..=self.max_iterations {
            let any = g.block_syndromes(word.as_words(), &mut syn);
            if !any {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: word,
                };
            }
            if iter == self.max_iterations {
                break;
            }
            // Fan unsatisfied checks out to their variables. Syndrome bit
            // k of block row i is check i·t + k, whose variables are
            // col·t + (k + shift) mod t for each block in the row.
            unsat.fill(0);
            for (i, row) in g.block_rows.iter().enumerate() {
                for w in 0..tw {
                    let mut bits = syn[i * tw + w];
                    while bits != 0 {
                        let k = w * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        for &(col, shift) in row {
                            unsat[col * g.t + (k + shift) % g.t] += 1;
                        }
                    }
                }
            }
            // Flip strict majorities.
            let mut flipped = false;
            for v in 0..g.n {
                let deg = (g.var_ptr[v + 1] - g.var_ptr[v]) as u8;
                if unsat[v] * 2 > deg {
                    word.flip(v);
                    flipped = true;
                }
            }
            if !flipped {
                // Stuck: no strict majority anywhere.
                break;
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: word,
        }
    }

    /// Straightforward per-edge implementation kept as the correctness
    /// reference for [`BitFlipDecoder::decode`].
    pub fn decode_reference(&self, received: &BitVec) -> DecodeOutcome {
        let g = &self.graph;
        assert_eq!(received.len(), g.n, "received word length mismatch");
        let mut word = received.clone();
        let mut unsat = vec![0u8; g.n];

        for iter in 0..=self.max_iterations {
            // Count unsatisfied checks per variable.
            unsat.fill(0);
            let mut any = false;
            for c in 0..g.m {
                let lo = g.chk_ptr[c] as usize;
                let hi = g.chk_ptr[c + 1] as usize;
                let mut parity = false;
                for e in lo..hi {
                    parity ^= word.get(g.chk_vars[e] as usize);
                }
                if parity {
                    any = true;
                    for e in lo..hi {
                        unsat[g.chk_vars[e] as usize] += 1;
                    }
                }
            }
            if !any {
                return DecodeOutcome {
                    success: true,
                    iterations: iter,
                    decoded: word,
                };
            }
            if iter == self.max_iterations {
                break;
            }
            // Flip strict majorities.
            let mut flipped = false;
            for v in 0..g.n {
                let deg = (g.var_ptr[v + 1] - g.var_ptr[v]) as u8;
                if unsat[v] * 2 > deg {
                    word.flip(v);
                    flipped = true;
                }
            }
            if !flipped {
                // Stuck: no strict majority anywhere.
                break;
            }
        }

        DecodeOutcome {
            success: false,
            iterations: self.max_iterations,
            decoded: word,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Bsc;
    use rif_events::SimRng;

    fn setup() -> (QcLdpcCode, BitVec, SimRng) {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(21);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        (code, cw, rng)
    }

    #[test]
    fn clean_input_decodes_in_zero_iterations() {
        let (code, cw, _) = setup();
        let out = MinSumDecoder::new(&code).decode(&cw);
        assert!(out.success);
        assert_eq!(out.iterations, 0);
        assert_eq!(out.decoded, cw);
    }

    #[test]
    fn minsum_corrects_scattered_errors() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        // small_test has n = 2304; 0.3% RBER ≈ 7 errors.
        for _ in 0..10 {
            let noisy = Bsc::new(0.003).corrupt(&cw, &mut rng);
            let out = dec.decode(&noisy);
            assert!(
                out.success,
                "failed to decode {} errors",
                cw.hamming_distance(&noisy)
            );
            assert_eq!(out.decoded, cw);
            assert!(out.iterations >= 1);
        }
    }

    #[test]
    fn minsum_fails_on_hopeless_input() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let noisy = Bsc::new(0.08).corrupt(&cw, &mut rng);
        let out = dec.decode(&noisy);
        assert!(!out.success);
        assert_eq!(out.iterations, dec.max_iterations());
    }

    #[test]
    fn iterations_grow_with_error_count() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let avg_iters = |p: f64, rng: &mut SimRng| -> f64 {
            let mut total = 0u32;
            let trials = 20;
            for _ in 0..trials {
                let noisy = Bsc::new(p).corrupt(&cw, rng);
                total += dec.decode(&noisy).iterations;
            }
            total as f64 / trials as f64
        };
        let low = avg_iters(0.001, &mut rng);
        let high = avg_iters(0.006, &mut rng);
        assert!(high > low, "iterations did not grow: {low} vs {high}");
    }

    #[test]
    fn fast_path_matches_reference_across_rbers() {
        let (code, cw, mut rng) = setup();
        let ms = MinSumDecoder::new(&code);
        let bf = BitFlipDecoder::new(&code);
        for &p in &[0.001, 0.004, 0.008, 0.02] {
            for _ in 0..5 {
                let noisy = Bsc::new(p).corrupt(&cw, &mut rng);
                assert_eq!(
                    ms.decode(&noisy),
                    ms.decode_reference(&noisy),
                    "min-sum at p={p}"
                );
                assert_eq!(
                    bf.decode(&noisy),
                    bf.decode_reference(&noisy),
                    "bit-flip at p={p}"
                );
            }
        }
    }

    #[test]
    fn bitflip_corrects_few_errors() {
        let (code, cw, mut rng) = setup();
        let dec = BitFlipDecoder::new(&code);
        for _ in 0..10 {
            let noisy = Bsc::corrupt_exact(&cw, 2, &mut rng);
            let out = dec.decode(&noisy);
            assert!(out.success, "bit flip failed on 2 errors");
            assert_eq!(out.decoded, cw);
        }
    }

    #[test]
    fn bitflip_clean_input() {
        let (code, cw, _) = setup();
        let out = BitFlipDecoder::new(&code).decode(&cw);
        assert!(out.success);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn minsum_outperforms_bitflip() {
        let (code, cw, mut rng) = setup();
        let ms = MinSumDecoder::new(&code);
        let bf = BitFlipDecoder::new(&code);
        let k = 12; // beyond Gallager-B comfort, fine for min-sum
        let mut ms_wins = 0;
        let mut bf_wins = 0;
        for _ in 0..20 {
            let noisy = Bsc::corrupt_exact(&cw, k, &mut rng);
            if ms.decode(&noisy).success {
                ms_wins += 1;
            }
            if bf.decode(&noisy).success {
                bf_wins += 1;
            }
        }
        assert!(ms_wins >= bf_wins, "min-sum {ms_wins} < bit-flip {bf_wins}");
        assert!(ms_wins >= 15, "min-sum too weak: {ms_wins}/20");
    }

    #[test]
    fn decode_is_deterministic() {
        let (code, cw, mut rng) = setup();
        let dec = MinSumDecoder::new(&code);
        let noisy = Bsc::new(0.005).corrupt(&cw, &mut rng);
        let a = dec.decode(&noisy);
        let b = dec.decode(&noisy);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one iteration")]
    fn zero_iteration_cap_rejected() {
        let code = QcLdpcCode::small_test();
        let _ = MinSumDecoder::with_max_iterations(&code, 0);
    }
}
