//! Quasi-cyclic parity-check matrices.
//!
//! The paper's code (§II-B1, Fig. 13, footnote 6) uses an `r × c` block
//! matrix of `t × t` circulants — concretely 4 × 36 blocks of 1024 × 1024 —
//! where each circulant `Q(C(i,j))` is the identity cyclically shifted right
//! by `C(i,j)`. The data part of our matrix is fully dense with random
//! shifts (4-cycle-free by construction), and the parity part uses the
//! standard encodable dual-diagonal structure (one weight-3 column followed
//! by an identity staircase), as in IEEE 802.11n QC-LDPC codes.

use rif_events::SimRng;

/// Placement of one circulant block inside the parity-check matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Block {
    /// Block-row index in `[0, rows_b)`.
    pub row: usize,
    /// Block-column index in `[0, cols_b)`.
    pub col: usize,
    /// Right cyclic shift of the identity (the coefficient `C(i,j)`).
    pub shift: usize,
}

/// A quasi-cyclic parity-check matrix in coefficient form.
///
/// Entry `(i, j)` is `None` for an all-zero block or `Some(shift)` for the
/// circulant `Q(shift)`.
///
/// # Example
///
/// ```
/// use rif_ldpc::QcMatrix;
///
/// let h = QcMatrix::paper_structure(4, 36, 64, 7);
/// assert_eq!(h.n(), 36 * 64);
/// assert_eq!(h.m(), 4 * 64);
/// // The data part is fully dense: every data column has weight rows_b.
/// assert!((0..32).all(|j| h.column_weight(j) == 4));
/// ```
#[derive(Debug, Clone)]
pub struct QcMatrix {
    rows_b: usize,
    cols_b: usize,
    t: usize,
    coeffs: Vec<Option<usize>>, // row-major rows_b x cols_b
}

impl QcMatrix {
    /// Builds a matrix with the paper's structure: `rows_b × cols_b` blocks
    /// of `t × t` circulants, with a fully dense random data part (the first
    /// `cols_b - rows_b` block columns) and an encodable dual-diagonal
    /// parity part (the last `rows_b` block columns).
    ///
    /// The random data shifts are drawn from `seed` and re-drawn per column
    /// until the column introduces no 4-cycle (girth ≥ 6 within the data
    /// part), which keeps min-sum decoding healthy.
    ///
    /// # Panics
    ///
    /// Panics unless `t` is a multiple of 64, `rows_b >= 2`, and
    /// `cols_b > rows_b`.
    pub fn paper_structure(rows_b: usize, cols_b: usize, t: usize, seed: u64) -> Self {
        assert!(
            t % 64 == 0,
            "circulant size must be a multiple of 64, got {t}"
        );
        assert!(rows_b >= 2, "need at least two block rows");
        assert!(cols_b > rows_b, "need at least one data column");
        let mut rng = SimRng::seed_from(seed);
        let data_cols = cols_b - rows_b;
        let mut coeffs: Vec<Option<usize>> = vec![None; rows_b * cols_b];

        // Parity part first: the first parity column has weight 3 (rows 0,
        // mid, rows_b-1) with shifts (1, 0, 1) as in IEEE 802.11n — the two
        // shift-1 entries cancel when all block rows are summed, so
        // p0 = Σ sᵢ still holds, while the non-zero shifts break 4-cycles
        // against the shift-0 staircase. The remaining parity columns form
        // the identity staircase: column k has identities at rows k-1, k.
        let p0 = data_cols;
        let mid = rows_b / 2;
        coeffs[p0] = Some(1);
        coeffs[mid * cols_b + p0] = Some(0);
        coeffs[(rows_b - 1) * cols_b + p0] = Some(1);
        for k in 1..rows_b {
            coeffs[(k - 1) * cols_b + (p0 + k)] = Some(0);
            coeffs[k * cols_b + (p0 + k)] = Some(0);
        }

        // Fully dense random data part, avoiding 4-cycles against *all*
        // previously placed columns (data and parity): two columns j, j'
        // sharing rows i1 != i2 create a 4-cycle iff
        // (C(i1,j) - C(i2,j)) ≡ (C(i1,j') - C(i2,j')) (mod t).
        let mut accepted: Vec<Vec<(usize, usize)>> = (data_cols..cols_b)
            .map(|j| {
                (0..rows_b)
                    .filter_map(|i| coeffs[i * cols_b + j].map(|s| (i, s)))
                    .collect()
            })
            .collect();
        for j in 0..data_cols {
            'retry: loop {
                let cand: Vec<(usize, usize)> = (0..rows_b).map(|i| (i, rng.index(t))).collect();
                for prev in &accepted {
                    for &(i1, s1_new) in &cand {
                        for &(i2, s2_new) in &cand {
                            if i2 <= i1 {
                                continue;
                            }
                            let (Some(&(_, s1_old)), Some(&(_, s2_old))) = (
                                prev.iter().find(|(i, _)| *i == i1),
                                prev.iter().find(|(i, _)| *i == i2),
                            ) else {
                                continue;
                            };
                            let d_new = (s1_new + t - s2_new) % t;
                            let d_old = (s1_old + t - s2_old) % t;
                            if d_new == d_old {
                                continue 'retry;
                            }
                        }
                    }
                }
                for &(i, s) in &cand {
                    coeffs[i * cols_b + j] = Some(s);
                }
                accepted.push(cand);
                break;
            }
        }

        QcMatrix {
            rows_b,
            cols_b,
            t,
            coeffs,
        }
    }

    /// Number of block rows `r`.
    pub fn rows_b(&self) -> usize {
        self.rows_b
    }

    /// Number of block columns `c`.
    pub fn cols_b(&self) -> usize {
        self.cols_b
    }

    /// Circulant size `t`.
    pub fn t(&self) -> usize {
        self.t
    }

    /// Codeword length in bits (`c · t`).
    pub fn n(&self) -> usize {
        self.cols_b * self.t
    }

    /// Number of parity checks (`r · t`).
    pub fn m(&self) -> usize {
        self.rows_b * self.t
    }

    /// Number of data block columns (`c − r`).
    pub fn data_cols_b(&self) -> usize {
        self.cols_b - self.rows_b
    }

    /// Shift coefficient at block `(i, j)`, or `None` for a zero block.
    ///
    /// # Panics
    ///
    /// Panics when the indices are out of range.
    pub fn coeff(&self, i: usize, j: usize) -> Option<usize> {
        assert!(
            i < self.rows_b && j < self.cols_b,
            "block ({i},{j}) out of range"
        );
        self.coeffs[i * self.cols_b + j]
    }

    /// Non-zero blocks in row-major order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        self.coeffs.iter().enumerate().filter_map(move |(k, c)| {
            c.map(|shift| Block {
                row: k / self.cols_b,
                col: k % self.cols_b,
                shift,
            })
        })
    }

    /// Non-zero blocks of one block row.
    pub fn row_blocks(&self, i: usize) -> impl Iterator<Item = Block> + '_ {
        assert!(i < self.rows_b, "block row {i} out of range");
        (0..self.cols_b).filter_map(move |j| {
            self.coeff(i, j).map(|shift| Block {
                row: i,
                col: j,
                shift,
            })
        })
    }

    /// Number of non-zero blocks in block column `j` (the variable-node
    /// degree of every bit in that segment).
    pub fn column_weight(&self, j: usize) -> usize {
        (0..self.rows_b)
            .filter(|&i| self.coeff(i, j).is_some())
            .count()
    }

    /// Number of non-zero blocks in block row `i` (the check-node degree of
    /// every check in that block row).
    pub fn row_weight(&self, i: usize) -> usize {
        (0..self.cols_b)
            .filter(|&j| self.coeff(i, j).is_some())
            .count()
    }

    /// Total number of edges in the Tanner graph.
    pub fn edge_count(&self) -> usize {
        self.coeffs.iter().filter(|c| c.is_some()).count() * self.t
    }

    /// For check `m = i·t + k`, the variable connected through block
    /// `(i, j)` with shift `s` is `j·t + ((k + s) mod t)`: row `k` of the
    /// right-shifted identity `Q(s)` has its 1 at column `(k + s) mod t`.
    pub fn var_of(&self, block: Block, k: usize) -> usize {
        debug_assert!(k < self.t);
        block.col * self.t + (k + block.shift) % self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_matches_paper_footnote6() {
        // Footnote 6: H is 4 x 36 blocks of 1024 x 1024 submatrices,
        // i.e. 4096 syndromes of which only the first 1024 are used by RP.
        let h = QcMatrix::paper_structure(4, 36, 1024, 42);
        assert_eq!(h.n(), 36_864);
        assert_eq!(h.m(), 4_096);
        assert_eq!(h.data_cols_b(), 32);
        assert_eq!(h.data_cols_b() * h.t(), 32_768); // exactly 4 KiB of data
    }

    #[test]
    fn data_part_is_fully_dense() {
        let h = QcMatrix::paper_structure(4, 36, 64, 1);
        for j in 0..h.data_cols_b() {
            assert_eq!(h.column_weight(j), 4, "data column {j}");
        }
    }

    #[test]
    fn parity_part_is_dual_diagonal() {
        let h = QcMatrix::paper_structure(4, 36, 64, 1);
        let p0 = h.data_cols_b();
        assert_eq!(h.column_weight(p0), 3);
        for k in 1..4 {
            assert_eq!(h.column_weight(p0 + k), 2, "staircase column {k}");
            assert_eq!(h.coeff(k - 1, p0 + k), Some(0));
            assert_eq!(h.coeff(k, p0 + k), Some(0));
        }
        // Staircase columns are zero elsewhere.
        assert_eq!(h.coeff(3, p0 + 1), None);
        assert_eq!(h.coeff(0, p0 + 3), None);
    }

    #[test]
    fn first_block_row_covers_data_and_leading_parity() {
        let h = QcMatrix::paper_structure(4, 36, 64, 1);
        let cols: Vec<usize> = h.row_blocks(0).map(|b| b.col).collect();
        // Row 0: all 32 data columns + p0 + first staircase column.
        assert_eq!(cols.len(), 34);
        assert!(cols.contains(&32) && cols.contains(&33));
    }

    #[test]
    fn no_four_cycles_in_data_part() {
        let h = QcMatrix::paper_structure(4, 12, 64, 3);
        let t = h.t();
        let dc = h.data_cols_b();
        for j1 in 0..dc {
            for j2 in (j1 + 1)..dc {
                for i1 in 0..4 {
                    for i2 in (i1 + 1)..4 {
                        let a = (h.coeff(i1, j1).unwrap() + t - h.coeff(i2, j1).unwrap()) % t;
                        let b = (h.coeff(i1, j2).unwrap() + t - h.coeff(i2, j2).unwrap()) % t;
                        assert_ne!(a, b, "4-cycle between columns {j1} and {j2}");
                    }
                }
            }
        }
    }

    #[test]
    fn var_of_is_in_segment() {
        let h = QcMatrix::paper_structure(4, 36, 64, 5);
        for b in h.blocks() {
            for k in [0, 1, h.t() - 1] {
                let v = h.var_of(b, k);
                assert!(v >= b.col * h.t() && v < (b.col + 1) * h.t());
            }
        }
    }

    #[test]
    fn edge_count_consistent_with_weights() {
        let h = QcMatrix::paper_structure(4, 36, 64, 5);
        let from_rows: usize = (0..4).map(|i| h.row_weight(i)).sum::<usize>() * h.t();
        let from_cols: usize = (0..36).map(|j| h.column_weight(j)).sum::<usize>() * h.t();
        assert_eq!(h.edge_count(), from_rows);
        assert_eq!(h.edge_count(), from_cols);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = QcMatrix::paper_structure(4, 36, 64, 77);
        let b = QcMatrix::paper_structure(4, 36, 64, 77);
        for i in 0..4 {
            for j in 0..36 {
                assert_eq!(a.coeff(i, j), b.coeff(i, j));
            }
        }
    }
}
