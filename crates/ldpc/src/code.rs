//! The QC-LDPC code: geometry, systematic encoding and membership checks.

use crate::bits::BitVec;
use crate::matrix::QcMatrix;

/// A systematic QC-LDPC code over a [`QcMatrix`].
///
/// The codeword is laid out as `c` segments of `t` bits; the first
/// `c − r` segments carry data and the rest carry parity. [`QcLdpcCode::paper`]
/// instantiates the exact geometry of the paper (footnote 6): 4 × 36 blocks
/// of 1024 × 1024 circulants — a 36 864-bit codeword protecting 4 KiB of
/// data with 4 096 parity checks.
///
/// # Example
///
/// ```
/// use rif_ldpc::{QcLdpcCode, bits::BitVec};
/// use rif_events::SimRng;
///
/// let code = QcLdpcCode::small_test();
/// let mut rng = SimRng::seed_from(3);
/// let data = BitVec::random(code.data_bits(), &mut rng);
/// let cw = code.encode(&data);
/// assert!(code.check(&cw));
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Debug, Clone)]
pub struct QcLdpcCode {
    h: QcMatrix,
}

/// Default RBER the paper quotes as the correction capability of the 4-KiB
/// QC-LDPC engine (§II-B1: failure probability exceeds 10⁻¹ beyond 0.0085).
pub const PAPER_CORRECTION_CAPABILITY: f64 = 0.0085;

impl QcLdpcCode {
    /// Wraps an existing parity-check matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has fewer than three block rows (the
    /// dual-diagonal encoder needs a distinct middle row).
    pub fn new(h: QcMatrix) -> Self {
        assert!(h.rows_b() >= 3, "encoder requires at least 3 block rows");
        QcLdpcCode { h }
    }

    /// The paper's full-size code: 4 × 36 blocks of 1024 × 1024 circulants.
    pub fn paper() -> Self {
        QcLdpcCode::new(QcMatrix::paper_structure(4, 36, 1024, 0x51F0_0D1E))
    }

    /// Same block structure with 64-bit circulants (2 304-bit codewords);
    /// keeps unit tests and property tests fast while exercising every code
    /// path.
    pub fn small_test() -> Self {
        QcLdpcCode::new(QcMatrix::paper_structure(4, 36, 64, 0x51F0_0D1E))
    }

    /// A mid-size code (256-bit circulants, 9 216-bit codewords) for
    /// integration tests that need realistic error-rate behaviour without
    /// full-size cost.
    pub fn medium() -> Self {
        QcLdpcCode::new(QcMatrix::paper_structure(4, 36, 256, 0x51F0_0D1E))
    }

    /// The parity-check matrix.
    pub fn matrix(&self) -> &QcMatrix {
        &self.h
    }

    /// Codeword length in bits.
    pub fn n(&self) -> usize {
        self.h.n()
    }

    /// Number of data bits per codeword.
    pub fn data_bits(&self) -> usize {
        self.h.data_cols_b() * self.h.t()
    }

    /// Number of parity bits per codeword.
    pub fn parity_bits(&self) -> usize {
        self.n() - self.data_bits()
    }

    /// Code rate (data bits / codeword bits).
    pub fn rate(&self) -> f64 {
        self.data_bits() as f64 / self.n() as f64
    }

    /// Segment (block column) `j` of a codeword, as a fresh `t`-bit vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range or `cw` has the wrong length.
    pub fn segment(&self, cw: &BitVec, j: usize) -> BitVec {
        assert!(j < self.h.cols_b(), "segment {j} out of range");
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        cw.slice(j * self.h.t(), self.h.t())
    }

    /// Encodes `data` into a codeword using dual-diagonal back-substitution.
    ///
    /// With parity segments `p0..p_{r-1}` and data partial sums
    /// `s_i = Σ_j Q(C(i,j)) d_j`, summing all block rows cancels the
    /// staircase and yields `p0 = Σ_i s_i`; the staircase then gives
    /// `p_{i+1} = s_i ⊕ p_i ⊕ [i ∈ rows(p0)] p0`.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly [`QcLdpcCode::data_bits`] long.
    pub fn encode(&self, data: &BitVec) -> BitVec {
        assert_eq!(data.len(), self.data_bits(), "data length mismatch");
        let t = self.h.t();
        let r = self.h.rows_b();
        let dc = self.h.data_cols_b();
        let mid = r / 2;

        // Partial sums of the data part, one t-bit vector per block row.
        let mut s: Vec<BitVec> = (0..r).map(|_| BitVec::zeros(t)).collect();
        for j in 0..dc {
            let seg = data.slice(j * t, t);
            for i in 0..r {
                if let Some(shift) = self.h.coeff(i, j) {
                    s[i].xor_assign(&seg.rotate_left(shift));
                }
            }
        }

        // p0 = XOR of all partial sums (the three identity blocks of the
        // weight-3 column collapse to a single p0 term).
        let mut p0 = BitVec::zeros(t);
        for si in &s {
            p0.xor_assign(si);
        }

        // Staircase back-substitution.
        let mut parity: Vec<BitVec> = Vec::with_capacity(r);
        parity.push(p0.clone());
        // Row 0: s_0 + Q(1) p0 + p1 = 0 (the weight-3 column's first entry
        // carries shift 1).
        let mut p = s[0].clone();
        p.xor_assign(&p0.rotate_left(1));
        parity.push(p);
        for i in 1..r - 1 {
            // Row i: s_i + [i == mid] p0 + p_i + p_{i+1} = 0.
            let mut next = s[i].clone();
            next.xor_assign(&parity[i]);
            if i == mid {
                next.xor_assign(&p0);
            }
            parity.push(next);
        }

        let mut cw = BitVec::zeros(self.n());
        cw.copy_from(0, data);
        for (k, pk) in parity.iter().enumerate() {
            cw.copy_from((dc + k) * t, pk);
        }
        debug_assert!(self.check(&cw), "encoder produced an invalid codeword");
        cw
    }

    /// True when `cw` satisfies every parity check.
    pub fn check(&self, cw: &BitVec) -> bool {
        self.syndrome(cw).is_zero()
    }

    /// Extracts the systematic data bits of a codeword.
    pub fn extract_data(&self, cw: &BitVec) -> BitVec {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        cw.slice(0, self.data_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimRng;

    #[test]
    fn paper_geometry() {
        let code = QcLdpcCode::paper();
        assert_eq!(code.n(), 36_864);
        assert_eq!(code.data_bits(), 32_768); // 4 KiB
        assert_eq!(code.parity_bits(), 4_096);
        assert!((code.rate() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn encode_produces_valid_codewords() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(2);
        for _ in 0..20 {
            let data = BitVec::random(code.data_bits(), &mut rng);
            let cw = code.encode(&data);
            assert!(code.check(&cw));
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn all_zero_data_encodes_to_all_zero_codeword() {
        let code = QcLdpcCode::small_test();
        let cw = code.encode(&BitVec::zeros(code.data_bits()));
        assert!(cw.is_zero());
        assert!(code.check(&cw));
    }

    #[test]
    fn code_is_linear() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(4);
        let a = BitVec::random(code.data_bits(), &mut rng);
        let b = BitVec::random(code.data_bits(), &mut rng);
        let mut ab = a.clone();
        ab.xor_assign(&b);
        let mut sum = code.encode(&a);
        sum.xor_assign(&code.encode(&b));
        assert_eq!(sum, code.encode(&ab));
    }

    #[test]
    fn single_bit_error_breaks_check() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(6);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        for i in [0usize, 100, code.n() - 1] {
            let mut bad = cw.clone();
            bad.flip(i);
            assert!(!code.check(&bad), "flip at {i} went undetected");
        }
    }

    #[test]
    fn segments_tile_the_codeword() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(8);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let t = code.matrix().t();
        for j in 0..code.matrix().cols_b() {
            let seg = code.segment(&cw, j);
            for k in 0..t {
                assert_eq!(seg.get(k), cw.get(j * t + k));
            }
        }
    }

    #[test]
    fn paper_encoder_roundtrip_fullsize() {
        let code = QcLdpcCode::paper();
        let mut rng = SimRng::seed_from(10);
        let data = BitVec::random(code.data_bits(), &mut rng);
        let cw = code.encode(&data);
        assert!(code.check(&cw));
        assert_eq!(code.extract_data(&cw), data);
    }
}
