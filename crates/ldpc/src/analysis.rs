//! Monte-Carlo sweeps over the real code, regenerating the raw data behind
//! Fig. 3 (decoding capability) and Fig. 10 (RBER ↔ syndrome-weight
//! correlation).

use rif_events::SimRng;

use crate::bits::BitVec;
use crate::channel::Bsc;
use crate::code::QcLdpcCode;
use crate::decoder::MinSumDecoder;

/// One point of a decoding-capability sweep (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CapabilityPoint {
    /// Raw bit-error rate injected.
    pub rber: f64,
    /// Fraction of trials in which min-sum decoding failed.
    pub failure_probability: f64,
    /// Mean number of decoder iterations across trials.
    pub avg_iterations: f64,
    /// Number of Monte-Carlo trials behind this point.
    pub trials: usize,
}

/// One point of a syndrome-weight sweep (Fig. 10).
#[derive(Debug, Clone, PartialEq)]
pub struct SyndromePoint {
    /// Raw bit-error rate injected.
    pub rber: f64,
    /// Mean full syndrome weight (all `r·t` checks).
    pub avg_full_weight: f64,
    /// Mean pruned syndrome weight (first block row only, as RP computes).
    pub avg_pruned_weight: f64,
    /// Number of Monte-Carlo trials behind this point.
    pub trials: usize,
}

/// Runs `trials` encode → corrupt-at-`rber` → decode rounds per RBER point.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn capability_sweep(
    code: &QcLdpcCode,
    rbers: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<CapabilityPoint> {
    assert!(trials > 0, "need at least one trial");
    let decoder = MinSumDecoder::new(code);
    let mut rng = SimRng::seed_from(seed);
    let mut out = Vec::with_capacity(rbers.len());
    for &rber in rbers {
        let channel = Bsc::new(rber);
        let mut failures = 0usize;
        let mut iters = 0u64;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            let res = decoder.decode(&noisy);
            if !res.success {
                failures += 1;
            }
            iters += u64::from(res.iterations);
        }
        out.push(CapabilityPoint {
            rber,
            failure_probability: failures as f64 / trials as f64,
            avg_iterations: iters as f64 / trials as f64,
            trials,
        });
    }
    out
}

/// Runs `trials` encode → corrupt rounds per RBER point, recording average
/// full and pruned syndrome weights.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn syndrome_sweep(
    code: &QcLdpcCode,
    rbers: &[f64],
    trials: usize,
    seed: u64,
) -> Vec<SyndromePoint> {
    assert!(trials > 0, "need at least one trial");
    let mut rng = SimRng::seed_from(seed);
    let mut out = Vec::with_capacity(rbers.len());
    for &rber in rbers {
        let channel = Bsc::new(rber);
        let mut full = 0u64;
        let mut pruned = 0u64;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            full += code.syndrome_weight(&noisy) as u64;
            pruned += code.pruned_syndrome_weight(&noisy) as u64;
        }
        out.push(SyndromePoint {
            rber,
            avg_full_weight: full as f64 / trials as f64,
            avg_pruned_weight: pruned as f64 / trials as f64,
            trials,
        });
    }
    out
}

/// The RP correctability threshold ρs for `code`: the expected pruned
/// syndrome weight at the correction-capability RBER (paper §IV-B sets
/// ρs to the syndrome weight corresponding to RBER = 0.0085).
pub fn rho_s(code: &QcLdpcCode, capability_rber: f64) -> usize {
    code.expected_pruned_weight(capability_rber).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_sweep_shows_waterfall() {
        let code = QcLdpcCode::small_test();
        let points = capability_sweep(&code, &[0.001, 0.02], 30, 99);
        assert!(points[0].failure_probability < 0.2, "low RBER should mostly decode");
        assert!(points[1].failure_probability > 0.8, "high RBER should mostly fail");
        assert!(points[1].avg_iterations > points[0].avg_iterations);
    }

    #[test]
    fn syndrome_sweep_monotone_in_rber() {
        let code = QcLdpcCode::small_test();
        let points = syndrome_sweep(&code, &[0.001, 0.004, 0.012], 50, 7);
        assert!(points[0].avg_full_weight < points[1].avg_full_weight);
        assert!(points[1].avg_full_weight < points[2].avg_full_weight);
        assert!(points[0].avg_pruned_weight < points[2].avg_pruned_weight);
        // Pruned weight is always a subset of the full weight.
        for p in &points {
            assert!(p.avg_pruned_weight <= p.avg_full_weight);
        }
    }

    #[test]
    fn rho_s_is_positive_and_below_t() {
        let code = QcLdpcCode::small_test();
        let rho = rho_s(&code, 0.0085);
        assert!(rho > 0);
        assert!(rho < code.matrix().t());
    }

    #[test]
    fn rho_s_scales_with_circulant_size() {
        let small = rho_s(&QcLdpcCode::small_test(), 0.0085);
        let medium = rho_s(&QcLdpcCode::medium(), 0.0085);
        // Same expected per-check probability, 4x the checks.
        let ratio = medium as f64 / small as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn sweep_rejects_zero_trials() {
        let code = QcLdpcCode::small_test();
        let _ = capability_sweep(&code, &[0.01], 0, 1);
    }
}
