//! Monte-Carlo sweeps over the real code, regenerating the raw data behind
//! Fig. 3 (decoding capability) and Fig. 10 (RBER ↔ syndrome-weight
//! correlation).
//!
//! Trials fan out over a `threads`-wide worker pool with one RNG stream
//! per trial (`SimRng::stream`), so every sweep returns the same points
//! for any thread count — `threads` is purely a wall-clock knob.

use rif_events::{parallel_trials, SimRng};

use crate::bits::BitVec;
use crate::channel::Bsc;
use crate::code::QcLdpcCode;
use crate::decoder::MinSumDecoder;

/// One point of a decoding-capability sweep (Fig. 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CapabilityPoint {
    /// Raw bit-error rate injected.
    pub rber: f64,
    /// Fraction of trials in which min-sum decoding failed.
    pub failure_probability: f64,
    /// Mean number of decoder iterations across trials.
    pub avg_iterations: f64,
    /// Number of Monte-Carlo trials behind this point.
    pub trials: usize,
}

/// One point of a syndrome-weight sweep (Fig. 10).
#[derive(Debug, Clone, PartialEq)]
pub struct SyndromePoint {
    /// Raw bit-error rate injected.
    pub rber: f64,
    /// Mean full syndrome weight (all `r·t` checks).
    pub avg_full_weight: f64,
    /// Mean pruned syndrome weight (first block row only, as RP computes).
    pub avg_pruned_weight: f64,
    /// Number of Monte-Carlo trials behind this point.
    pub trials: usize,
}

/// Runs `trials` encode → corrupt-at-`rber` → decode rounds per RBER
/// point, fanned out over `threads` workers. Trial `k` of point `i` always
/// draws from `SimRng::stream(seed, i·trials + k)`, so the result is
/// independent of `threads`.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn capability_sweep(
    code: &QcLdpcCode,
    rbers: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<CapabilityPoint> {
    assert!(trials > 0, "need at least one trial");
    let decoder = MinSumDecoder::new(code);
    let mut out = Vec::with_capacity(rbers.len());
    for (pi, &rber) in rbers.iter().enumerate() {
        let channel = Bsc::new(rber);
        let results = parallel_trials(threads, trials, |k| {
            let mut rng = SimRng::stream(seed, (pi * trials + k) as u64);
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            let res = decoder.decode(&noisy);
            (res.success, res.iterations)
        });
        let failures = results.iter().filter(|(success, _)| !success).count();
        let iters: u64 = results.iter().map(|&(_, it)| u64::from(it)).sum();
        out.push(CapabilityPoint {
            rber,
            failure_probability: failures as f64 / trials as f64,
            avg_iterations: iters as f64 / trials as f64,
            trials,
        });
    }
    out
}

/// Runs `trials` encode → corrupt rounds per RBER point, recording average
/// full and pruned syndrome weights. Same per-trial RNG streams as
/// [`capability_sweep`]: the points do not depend on `threads`.
///
/// # Panics
///
/// Panics if `trials` is zero.
pub fn syndrome_sweep(
    code: &QcLdpcCode,
    rbers: &[f64],
    trials: usize,
    seed: u64,
    threads: usize,
) -> Vec<SyndromePoint> {
    assert!(trials > 0, "need at least one trial");
    let mut out = Vec::with_capacity(rbers.len());
    for (pi, &rber) in rbers.iter().enumerate() {
        let channel = Bsc::new(rber);
        let results = parallel_trials(threads, trials, |k| {
            let mut rng = SimRng::stream(seed, (pi * trials + k) as u64);
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            (
                code.syndrome_weight(&noisy) as u64,
                code.pruned_syndrome_weight(&noisy) as u64,
            )
        });
        let full: u64 = results.iter().map(|&(f, _)| f).sum();
        let pruned: u64 = results.iter().map(|&(_, p)| p).sum();
        out.push(SyndromePoint {
            rber,
            avg_full_weight: full as f64 / trials as f64,
            avg_pruned_weight: pruned as f64 / trials as f64,
            trials,
        });
    }
    out
}

/// The RP correctability threshold ρs for `code`: the expected pruned
/// syndrome weight at the correction-capability RBER (paper §IV-B sets
/// ρs to the syndrome weight corresponding to RBER = 0.0085).
pub fn rho_s(code: &QcLdpcCode, capability_rber: f64) -> usize {
    code.expected_pruned_weight(capability_rber).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capability_sweep_shows_waterfall() {
        let code = QcLdpcCode::small_test();
        let points = capability_sweep(&code, &[0.001, 0.02], 30, 99, 1);
        assert!(
            points[0].failure_probability < 0.2,
            "low RBER should mostly decode"
        );
        assert!(
            points[1].failure_probability > 0.8,
            "high RBER should mostly fail"
        );
        assert!(points[1].avg_iterations > points[0].avg_iterations);
    }

    #[test]
    fn sweeps_are_thread_count_invariant() {
        let code = QcLdpcCode::small_test();
        let rbers = [0.002, 0.009];
        assert_eq!(
            capability_sweep(&code, &rbers, 12, 5, 1),
            capability_sweep(&code, &rbers, 12, 5, 8),
        );
        assert_eq!(
            syndrome_sweep(&code, &rbers, 12, 5, 1),
            syndrome_sweep(&code, &rbers, 12, 5, 8),
        );
    }

    #[test]
    fn syndrome_sweep_monotone_in_rber() {
        let code = QcLdpcCode::small_test();
        let points = syndrome_sweep(&code, &[0.001, 0.004, 0.012], 50, 7, 1);
        assert!(points[0].avg_full_weight < points[1].avg_full_weight);
        assert!(points[1].avg_full_weight < points[2].avg_full_weight);
        assert!(points[0].avg_pruned_weight < points[2].avg_pruned_weight);
        // Pruned weight is always a subset of the full weight.
        for p in &points {
            assert!(p.avg_pruned_weight <= p.avg_full_weight);
        }
    }

    #[test]
    fn rho_s_is_positive_and_below_t() {
        let code = QcLdpcCode::small_test();
        let rho = rho_s(&code, 0.0085);
        assert!(rho > 0);
        assert!(rho < code.matrix().t());
    }

    #[test]
    fn rho_s_scales_with_circulant_size() {
        let small = rho_s(&QcLdpcCode::small_test(), 0.0085);
        let medium = rho_s(&QcLdpcCode::medium(), 0.0085);
        // Same expected per-check probability, 4x the checks.
        let ratio = medium as f64 / small as f64;
        assert!((ratio - 4.0).abs() < 0.2, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn sweep_rejects_zero_trials() {
        let code = QcLdpcCode::small_test();
        let _ = capability_sweep(&code, &[0.01], 0, 1, 1);
    }
}
