//! Word-packed bit vectors sized in multiples of 64 bits.
//!
//! Codewords, syndromes and page buffers are all multiples of 64 bits in
//! this reproduction (circulant sizes are required to be word-aligned), so a
//! `Vec<u64>` representation with hardware popcount keeps the Monte-Carlo
//! loops of Figs. 3/10/11/14 fast.

use rif_events::SimRng;

/// A fixed-length bit vector packed into 64-bit words.
///
/// # Example
///
/// ```
/// use rif_ldpc::bits::BitVec;
///
/// let mut v = BitVec::zeros(128);
/// v.set(3, true);
/// v.set(127, true);
/// assert_eq!(v.count_ones(), 2);
/// assert!(v.get(3) && v.get(127) && !v.get(64));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// Creates an all-zero vector of `len` bits.
    ///
    /// # Panics
    ///
    /// Panics if `len` is not a multiple of 64 (all users of this crate work
    /// on word-aligned segments).
    pub fn zeros(len: usize) -> Self {
        assert!(
            len % 64 == 0,
            "BitVec length must be a multiple of 64, got {len}"
        );
        BitVec {
            words: vec![0; len / 64],
            len,
        }
    }

    /// Wraps pre-packed words as a `len`-bit vector (bit `i` is bit
    /// `i % 64` of word `i / 64`).
    ///
    /// # Panics
    ///
    /// Panics unless `len` is a multiple of 64 matching `words.len()`.
    pub fn from_words(words: Vec<u64>, len: usize) -> Self {
        assert!(
            len % 64 == 0,
            "BitVec length must be a multiple of 64, got {len}"
        );
        assert_eq!(words.len(), len / 64, "word count does not match length");
        BitVec { words, len }
    }

    /// Creates a uniformly random vector of `len` bits.
    pub fn random(len: usize, rng: &mut SimRng) -> Self {
        let mut v = BitVec::zeros(len);
        for w in &mut v.words {
            *w = rng.next_u64();
        }
        v
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the vector has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    #[inline]
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True when no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &BitVec) {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Hamming distance to `other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn hamming_distance(&self, other: &BitVec) -> usize {
        assert_eq!(self.len, other.len, "BitVec length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Returns bits `[start, start + n)` as a new vector.
    ///
    /// # Panics
    ///
    /// Panics unless `start` and `n` are multiples of 64 and in range.
    pub fn slice(&self, start: usize, n: usize) -> BitVec {
        assert!(start % 64 == 0 && n % 64 == 0, "slice must be word-aligned");
        assert!(start + n <= self.len, "slice out of range");
        BitVec {
            words: self.words[start / 64..(start + n) / 64].to_vec(),
            len: n,
        }
    }

    /// Overwrites bits `[start, start + src.len())` with `src`.
    ///
    /// # Panics
    ///
    /// Panics unless `start` is a multiple of 64 and the span is in range.
    pub fn copy_from(&mut self, start: usize, src: &BitVec) {
        assert!(start % 64 == 0, "copy_from offset must be word-aligned");
        assert!(start + src.len <= self.len, "copy_from out of range");
        let w0 = start / 64;
        self.words[w0..w0 + src.words.len()].copy_from_slice(&src.words);
    }

    /// Rotates the whole vector left by `s` bit positions: output bit `k`
    /// equals input bit `(k + s) mod len`.
    ///
    /// This is exactly the per-segment rotation of the codeword
    /// rearrangement scheme (paper Fig. 15): rotating segment `j` left by
    /// `C(1,j)` turns the circulant `Q(C(1,j))` into the identity.
    pub fn rotate_left(&self, s: usize) -> BitVec {
        let n = self.len;
        if n == 0 {
            return self.clone();
        }
        let s = s % n;
        if s == 0 {
            return self.clone();
        }
        let nw = self.words.len();
        let word_shift = s / 64;
        let bit_shift = s % 64;
        let mut out = BitVec::zeros(n);
        for w in 0..nw {
            let lo = self.words[(w + word_shift) % nw];
            if bit_shift == 0 {
                out.words[w] = lo;
            } else {
                let hi = self.words[(w + word_shift + 1) % nw];
                out.words[w] = (lo >> bit_shift) | (hi << (64 - bit_shift));
            }
        }
        out
    }

    /// Rotates right by `s`: inverse of [`BitVec::rotate_left`].
    pub fn rotate_right(&self, s: usize) -> BitVec {
        if self.len == 0 {
            return self.clone();
        }
        self.rotate_left(self.len - (s % self.len))
    }

    /// Iterator over the indices of set bits.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let b = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + b)
                }
            })
        })
    }

    /// Raw word storage (read-only).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl std::fmt::Debug for BitVec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitVec[len={}, ones={}]", self.len, self.count_ones())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_flip() {
        let mut v = BitVec::zeros(192);
        assert!(v.is_zero());
        v.set(0, true);
        v.set(191, true);
        v.flip(100);
        v.flip(100);
        assert!(v.get(0));
        assert!(v.get(191));
        assert!(!v.get(100));
        assert_eq!(v.count_ones(), 2);
    }

    #[test]
    #[should_panic(expected = "multiple of 64")]
    fn rejects_unaligned_length() {
        let _ = BitVec::zeros(100);
    }

    #[test]
    fn xor_and_distance() {
        let mut rng = SimRng::seed_from(5);
        let a = BitVec::random(256, &mut rng);
        let b = BitVec::random(256, &mut rng);
        let d = a.hamming_distance(&b);
        let mut c = a.clone();
        c.xor_assign(&b);
        assert_eq!(c.count_ones(), d);
        c.xor_assign(&b);
        assert_eq!(c, a);
    }

    #[test]
    fn rotate_left_matches_naive() {
        let mut rng = SimRng::seed_from(9);
        let v = BitVec::random(256, &mut rng);
        for s in [0usize, 1, 63, 64, 65, 128, 255, 256, 300] {
            let r = v.rotate_left(s);
            for k in 0..256 {
                assert_eq!(r.get(k), v.get((k + s) % 256), "s={s} k={k}");
            }
        }
    }

    #[test]
    fn rotate_roundtrip() {
        let mut rng = SimRng::seed_from(10);
        let v = BitVec::random(1024, &mut rng);
        for s in [1usize, 17, 64, 500, 1023] {
            assert_eq!(v.rotate_left(s).rotate_right(s), v);
        }
    }

    #[test]
    fn slice_and_copy_roundtrip() {
        let mut rng = SimRng::seed_from(11);
        let v = BitVec::random(512, &mut rng);
        let s = v.slice(128, 192);
        assert_eq!(s.len(), 192);
        for k in 0..192 {
            assert_eq!(s.get(k), v.get(128 + k));
        }
        let mut w = BitVec::zeros(512);
        w.copy_from(128, &s);
        for k in 0..192 {
            assert_eq!(w.get(128 + k), v.get(128 + k));
        }
        assert_eq!(w.count_ones(), s.count_ones());
    }

    #[test]
    fn iter_ones_yields_exactly_set_bits() {
        let mut v = BitVec::zeros(192);
        for &i in &[0usize, 5, 63, 64, 65, 191] {
            v.set(i, true);
        }
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 191]);
    }

    #[test]
    fn random_is_roughly_half_ones() {
        let mut rng = SimRng::seed_from(12);
        let v = BitVec::random(64 * 1024, &mut rng);
        let frac = v.count_ones() as f64 / v.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "frac {frac}");
    }
}
