//! Quasi-cyclic LDPC codes: the ECC substrate of the RiF reproduction.
//!
//! Modern SSDs protect every 4-KiB chunk of user data with a QC-LDPC code
//! decoded by a channel-level engine (paper §II-B). The paper's code is a
//! 4 × 36 block parity-check matrix of 1024 × 1024 circulants — a 36 864-bit
//! codeword carrying 4 KiB of data. This crate implements that code for real:
//!
//! * [`QcMatrix`] / [`QcLdpcCode`] — matrix construction (random data part +
//!   dual-diagonal encodable parity part) and systematic encoding;
//! * [`decoder::MinSumDecoder`] — normalized min-sum decoding with iteration
//!   counts and early termination (backs Fig. 3);
//! * [`decoder::BitFlipDecoder`] — Gallager-B hard-decision decoding, used as
//!   a cheap cross-check;
//! * [`syndrome`] — syndrome vectors, syndrome weight, the *pruned* weight
//!   over the first block row (paper §V-A2), and chunk selection;
//! * [`rearrange`] — the codeword rearrangement of §V-B that turns the first
//!   block row into identity circulants so on-die syndrome computation is a
//!   plain XOR-and-popcount across segments;
//! * [`model::EccModel`] — the calibrated behavioural model (decoding-failure
//!   probability, iteration count, tECC) that the event-level SSD simulator
//!   consumes, exactly as the paper's extended MQSim-E does;
//! * [`analysis`] — Monte-Carlo sweeps regenerating Figs. 3 and 10.
//!
//! # Example
//!
//! ```
//! use rif_ldpc::{QcLdpcCode, decoder::MinSumDecoder, channel::Bsc};
//! use rif_events::SimRng;
//!
//! let code = QcLdpcCode::small_test(); // 4 x 36 blocks of 64 x 64 circulants
//! let mut rng = SimRng::seed_from(1);
//! let data = rif_ldpc::bits::BitVec::random(code.data_bits(), &mut rng);
//! let cw = code.encode(&data);
//! assert!(code.check(&cw));
//!
//! let noisy = Bsc::new(0.002).corrupt(&cw, &mut rng);
//! let decoder = MinSumDecoder::new(&code);
//! let out = decoder.decode(&noisy);
//! assert!(out.success);
//! ```

pub mod analysis;
pub mod bits;
pub mod channel;
pub mod code;
pub mod decoder;
pub mod matrix;
pub mod model;
pub mod rearrange;
pub mod syndrome;

pub use bits::BitVec;
pub use channel::{Bsc, SoftChannel};
pub use code::QcLdpcCode;
pub use matrix::QcMatrix;
pub use model::EccModel;
