//! Binary symmetric channel (BSC) error injection.
//!
//! The NAND read path is modelled as a BSC whose crossover probability is
//! the page's RBER (paper §III, §VI-A): thanks to data randomization the
//! raw bit errors of a sensed page are uniformly distributed (Fig. 12), so
//! independent flips are the right noise model.

use crate::bits::BitVec;
use rif_events::SimRng;

/// A binary symmetric channel with crossover probability `p`.
///
/// # Example
///
/// ```
/// use rif_ldpc::{Bsc, bits::BitVec};
/// use rif_events::SimRng;
///
/// let mut rng = SimRng::seed_from(9);
/// let clean = BitVec::zeros(64 * 1024);
/// let noisy = Bsc::new(0.01).corrupt(&clean, &mut rng);
/// let rate = noisy.count_ones() as f64 / clean.len() as f64;
/// assert!((rate - 0.01).abs() < 0.003);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bsc {
    p: f64,
}

impl Bsc {
    /// Creates a channel with crossover probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    pub fn new(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "crossover probability {p} out of range"
        );
        Bsc { p }
    }

    /// The crossover probability.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Returns a copy of `input` with each bit independently flipped with
    /// probability `p`.
    ///
    /// Uses geometric gap sampling, so the cost is proportional to the
    /// number of flips rather than the vector length — essential for the
    /// 10⁵-page Monte-Carlo sweeps of Figs. 11/14.
    pub fn corrupt(&self, input: &BitVec, rng: &mut SimRng) -> BitVec {
        let mut out = input.clone();
        self.corrupt_in_place(&mut out, rng);
        out
    }

    /// In-place variant of [`Bsc::corrupt`].
    pub fn corrupt_in_place(&self, data: &mut BitVec, rng: &mut SimRng) {
        if self.p <= 0.0 {
            return;
        }
        if self.p >= 1.0 {
            for i in 0..data.len() {
                data.flip(i);
            }
            return;
        }
        let ln_q = (1.0 - self.p).ln();
        let mut i: usize = 0;
        loop {
            // Geometric gap: number of untouched bits before the next flip.
            let u = 1.0 - rng.uniform();
            let gap = (u.ln() / ln_q).floor() as usize;
            i = match i.checked_add(gap) {
                Some(v) => v,
                None => break,
            };
            if i >= data.len() {
                break;
            }
            data.flip(i);
            i += 1;
        }
    }

    /// Flips exactly `k` distinct, uniformly chosen bit positions.
    ///
    /// Used when an experiment needs a page with a *known* RBER (e.g. the
    /// "10⁵ test pages with the same RBER value" validation of Fig. 11).
    ///
    /// # Panics
    ///
    /// Panics if `k > input.len()`.
    pub fn corrupt_exact(input: &BitVec, k: usize, rng: &mut SimRng) -> BitVec {
        assert!(k <= input.len(), "cannot flip {k} of {} bits", input.len());
        let mut out = input.clone();
        if k == 0 {
            return out;
        }
        // Floyd's algorithm for k distinct samples without replacement.
        let n = input.len();
        let mut chosen = std::collections::HashSet::with_capacity(k);
        for j in (n - k)..n {
            let r = rng.index(j + 1);
            let pick = if chosen.contains(&r) { j } else { r };
            chosen.insert(pick);
            out.flip(pick);
        }
        out
    }
}

/// A soft-output read channel: each transmitted bit yields a
/// log-likelihood ratio rather than a hard decision.
///
/// Models the *soft sensing* fallback of modern SSDs: re-sensing a page
/// at several reference-voltage offsets bins each cell by how far its
/// V_TH sits from the decision boundary, which maps (through the Gaussian
/// V_TH model) onto an LLR. We use the standard binary-input AWGN
/// abstraction: a `0`-bit produces `N(+μ, 1)` and a `1`-bit `N(−μ, 1)`,
/// with `μ` chosen so the *hard-decision* error rate of the soft read
/// equals the page's RBER. Feeding these LLRs to
/// [`crate::decoder::MinSumDecoder::decode_llr`] decodes well beyond the
/// hard-decision capability — the last-resort tier below read-retry.
///
/// # Example
///
/// ```
/// use rif_ldpc::channel::SoftChannel;
/// use rif_ldpc::bits::BitVec;
/// use rif_events::SimRng;
///
/// let mut rng = SimRng::seed_from(3);
/// let ch = SoftChannel::new(0.01);
/// let llrs = ch.transmit(&BitVec::zeros(256), &mut rng);
/// // Most LLRs lean toward 0 (positive).
/// let positive = llrs.iter().filter(|&&l| l > 0.0).count();
/// assert!(positive > 240);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SoftChannel {
    /// Mean LLR magnitude (μ of the equivalent AWGN channel).
    mu: f64,
}

impl SoftChannel {
    /// Creates a soft channel whose hard-decision error rate is `rber`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < rber < 0.5`.
    pub fn new(rber: f64) -> Self {
        assert!(
            rber > 0.0 && rber < 0.5,
            "soft channel needs 0 < rber < 0.5, got {rber}"
        );
        // P(N(mu,1) < 0) = rber  =>  mu = -Phi^{-1}(rber).
        SoftChannel {
            mu: -crate::model::normal_quantile(rber),
        }
    }

    /// The equivalent hard-decision error rate.
    pub fn hard_error_rate(&self) -> f64 {
        crate::model::normal_cdf(-self.mu)
    }

    /// Produces one LLR per transmitted bit. The LLR of an observation
    /// `y ~ N(±μ, 1)` is `2μy`, positive when leaning toward bit 0.
    pub fn transmit(&self, input: &BitVec, rng: &mut SimRng) -> Vec<f32> {
        (0..input.len())
            .map(|i| {
                let sign = if input.get(i) { -1.0 } else { 1.0 };
                let y = rng.gaussian_with(sign * self.mu, 1.0);
                (2.0 * self.mu * y) as f32
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::QcLdpcCode;
    use crate::decoder::MinSumDecoder;

    #[test]
    fn corrupt_rate_matches_p() {
        let mut rng = SimRng::seed_from(1);
        let clean = BitVec::zeros(64 * 4096);
        for &p in &[0.001, 0.005, 0.02] {
            let noisy = Bsc::new(p).corrupt(&clean, &mut rng);
            let rate = noisy.count_ones() as f64 / clean.len() as f64;
            assert!((rate - p).abs() < p * 0.5 + 2e-4, "p={p} rate={rate}");
        }
    }

    #[test]
    fn zero_p_is_identity() {
        let mut rng = SimRng::seed_from(2);
        let v = BitVec::random(1024, &mut rng);
        assert_eq!(Bsc::new(0.0).corrupt(&v, &mut rng), v);
    }

    #[test]
    fn one_p_flips_everything() {
        let mut rng = SimRng::seed_from(3);
        let v = BitVec::random(256, &mut rng);
        let w = Bsc::new(1.0).corrupt(&v, &mut rng);
        assert_eq!(v.hamming_distance(&w), 256);
    }

    #[test]
    fn corrupt_exact_flips_exactly_k() {
        let mut rng = SimRng::seed_from(4);
        let v = BitVec::random(2048, &mut rng);
        for &k in &[0usize, 1, 17, 2048] {
            let w = Bsc::corrupt_exact(&v, k, &mut rng);
            assert_eq!(v.hamming_distance(&w), k, "k={k}");
        }
    }

    #[test]
    fn corrupt_exact_positions_are_uniform() {
        let mut rng = SimRng::seed_from(5);
        let v = BitVec::zeros(128);
        let mut hits = vec![0u32; 128];
        for _ in 0..4000 {
            let w = Bsc::corrupt_exact(&v, 4, &mut rng);
            for i in w.iter_ones() {
                hits[i] += 1;
            }
        }
        // Each position expects 4000*4/128 = 125 hits.
        for (i, &h) in hits.iter().enumerate() {
            assert!((50..250).contains(&h), "position {i} hit {h} times");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_probability() {
        let _ = Bsc::new(1.5);
    }

    #[test]
    fn soft_hard_error_rate_matches_construction() {
        for &p in &[0.001, 0.0085, 0.05] {
            let ch = SoftChannel::new(p);
            // The erf approximation carries ~1.5e-7 absolute error, which
            // dominates the relative error at small p.
            assert!((ch.hard_error_rate() - p).abs() < 2e-4, "p={p}");
        }
    }

    #[test]
    fn soft_llr_signs_track_bits_statistically() {
        let mut rng = SimRng::seed_from(8);
        let ch = SoftChannel::new(0.02);
        let mut data = BitVec::zeros(4096);
        for i in 2048..4096 {
            data.set(i, true);
        }
        let llrs = ch.transmit(&data, &mut rng);
        let err0 = llrs[..2048].iter().filter(|&&l| l < 0.0).count() as f64 / 2048.0;
        let err1 = llrs[2048..].iter().filter(|&&l| l > 0.0).count() as f64 / 2048.0;
        assert!((err0 - 0.02).abs() < 0.01, "err0 {err0}");
        assert!((err1 - 0.02).abs() < 0.01, "err1 {err1}");
    }

    #[test]
    fn soft_decoding_beats_hard_capability() {
        // The point of soft sensing: at an RBER where hard decoding is
        // hopeless (well past the waterfall), soft LLRs still decode.
        let code = QcLdpcCode::small_test();
        let dec = MinSumDecoder::new(&code);
        let mut rng = SimRng::seed_from(9);
        let rber = 0.02; // hard decoding fails ~always here (cap ≈ 0.011)
        let mut hard_ok = 0;
        let mut soft_ok = 0;
        let trials = 20;
        for _ in 0..trials {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = Bsc::new(rber).corrupt(&cw, &mut rng);
            if dec.decode(&noisy).success {
                hard_ok += 1;
            }
            let llrs = SoftChannel::new(rber).transmit(&cw, &mut rng);
            let out = dec.decode_llr(&llrs);
            if out.success && out.decoded == cw {
                soft_ok += 1;
            }
        }
        assert!(
            hard_ok <= trials / 4,
            "hard decoding too strong: {hard_ok}/{trials}"
        );
        assert!(
            soft_ok >= trials * 3 / 4,
            "soft decoding too weak: {soft_ok}/{trials}"
        );
    }

    #[test]
    #[should_panic(expected = "0 < rber < 0.5")]
    fn soft_channel_rejects_half() {
        let _ = SoftChannel::new(0.5);
    }
}
