//! Behavioural ECC model for the event-level SSD simulator.
//!
//! The paper's extended MQSim-E does not decode real codewords; it "mimics
//! the latency for decoding the target page and invokes a read-retry
//! procedure when the page's RBER exceeds the ECC correction capability"
//! (§III-B1, §VI-A). [`EccModel`] is that abstraction: given a page RBER it
//! answers *does decoding fail?* and *how long does decoding take?* with a
//! smooth probit (normal-CDF) transition calibrated either to the paper's
//! anchors or to Monte-Carlo runs of the real decoder in this crate.

use rif_events::{SimDuration, SimRng};

use crate::analysis::{capability_sweep, CapabilityPoint};
use crate::code::{QcLdpcCode, PAPER_CORRECTION_CAPABILITY};
use crate::decoder::PAPER_MAX_ITERATIONS;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (absolute error < 1.5e-7 — far below Monte-Carlo noise).
pub fn normal_cdf(x: f64) -> f64 {
    let z = x / std::f64::consts::SQRT_2;
    0.5 * (1.0 + erf(z))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let y = 1.0
        - (((((1.061_405_429 * t - 1.453_152_027) * t) + 1.421_413_741) * t - 0.284_496_736) * t
            + 0.254_829_592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Calibrated decoding-failure / latency model of a channel-level QC-LDPC
/// engine.
///
/// # Example
///
/// ```
/// use rif_ldpc::EccModel;
///
/// let ecc = EccModel::paper_default();
/// // At the paper's correction capability the failure probability is 0.1.
/// let p = ecc.failure_probability(0.0085);
/// assert!((p - 0.1).abs() < 0.01);
/// // Well below it, decoding virtually never fails and is fast.
/// assert!(ecc.failure_probability(0.004) < 1e-6);
/// assert!(ecc.t_ecc(0.004).as_us() < 2.0);
/// // Well above it, decoding fails and burns the full 20 µs.
/// assert!(ecc.failure_probability(0.012) > 0.99);
/// assert!(ecc.t_ecc(0.012).as_us() > 19.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct EccModel {
    rber50: f64,
    sigma: f64,
    iter50: f64,
    iter_sigma: f64,
    max_iterations: u32,
    t_iter_us: f64,
}

impl EccModel {
    /// The paper's model: correction capability 0.0085 (failure probability
    /// 10⁻¹ there), iterations saturating at 20, tECC spanning 1–20 µs.
    pub fn paper_default() -> Self {
        // Probit slope chosen so the 10 %→90 % failure transition spans
        // ≈0.0013 RBER, matching the sharp waterfall of Fig. 3(a).
        let sigma = 0.000_5;
        let rber50 = PAPER_CORRECTION_CAPABILITY + 1.281_552 * sigma;
        EccModel {
            rber50,
            sigma,
            // Iteration count is already near max at the capability
            // (Fig. 3(b): 20 iterations at RBER 0.0085).
            iter50: 0.007_0,
            iter_sigma: 0.000_8,
            max_iterations: PAPER_MAX_ITERATIONS,
            t_iter_us: 1.0,
        }
    }

    /// Builds a model with explicit probit parameters.
    ///
    /// # Panics
    ///
    /// Panics if `sigma`, `iter_sigma` or `t_iter_us` are not positive, or
    /// `max_iterations` is zero.
    pub fn with_parameters(
        rber50: f64,
        sigma: f64,
        iter50: f64,
        iter_sigma: f64,
        max_iterations: u32,
        t_iter_us: f64,
    ) -> Self {
        assert!(sigma > 0.0 && iter_sigma > 0.0, "slopes must be positive");
        assert!(t_iter_us > 0.0, "per-iteration latency must be positive");
        assert!(max_iterations > 0, "need at least one iteration");
        EccModel {
            rber50,
            sigma,
            iter50,
            iter_sigma,
            max_iterations,
            t_iter_us,
        }
    }

    /// Calibrates a model against Monte-Carlo runs of the *real* min-sum
    /// decoder on `code`, fitting the probit failure curve to the measured
    /// points and anchoring the iteration ramp to the measured capability.
    ///
    /// Used by the fig03 harness to document how far the synthetic code's
    /// waterfall sits from the paper's 0.0085 anchor.
    pub fn calibrated_from(code: &QcLdpcCode, trials: usize, seed: u64, threads: usize) -> Self {
        let rbers: Vec<f64> = (1..=14).map(|i| i as f64 * 0.001).collect();
        let points = capability_sweep(code, &rbers, trials, seed, threads);
        Self::fit(&points)
    }

    /// Fits probit parameters to measured capability points.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty.
    pub fn fit(points: &[CapabilityPoint]) -> Self {
        assert!(!points.is_empty(), "cannot fit an empty sweep");
        // Least-squares in probit space over points with informative
        // failure probabilities.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for p in points {
            if p.failure_probability > 0.005 && p.failure_probability < 0.995 {
                xs.push(p.rber);
                ys.push(probit(p.failure_probability));
            }
        }
        let (rber50, sigma) = if xs.len() >= 2 {
            let n = xs.len() as f64;
            let mx = xs.iter().sum::<f64>() / n;
            let my = ys.iter().sum::<f64>() / n;
            let sxy: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
            let slope = sxy / sxx.max(1e-18);
            let sigma = (1.0 / slope).max(1e-6);
            (mx - my * sigma, sigma)
        } else {
            // Degenerate sweep: fall back to the transition midpoint.
            let mid = points
                .iter()
                .find(|p| p.failure_probability >= 0.5)
                .or(points.last())
                .expect("non-empty");
            (mid.rber, 0.000_5)
        };
        // Anchor the iteration ramp so iterations saturate at the fitted
        // capability, mirroring Fig. 3(b)'s alignment with Fig. 3(a).
        let cap = rber50 - 1.281_552 * sigma;
        EccModel {
            rber50,
            sigma,
            iter50: cap * 0.82,
            iter_sigma: sigma * 1.6,
            max_iterations: PAPER_MAX_ITERATIONS,
            t_iter_us: 1.0,
        }
    }

    /// The RBER at which decoding fails with probability 10⁻¹ — the
    /// "correction capability" in the paper's terminology.
    pub fn correction_capability(&self) -> f64 {
        self.rber50 - 1.281_552 * self.sigma
    }

    /// Probability that decoding a page with the given RBER fails.
    pub fn failure_probability(&self, rber: f64) -> f64 {
        normal_cdf((rber - self.rber50) / self.sigma)
    }

    /// Expected number of decoder iterations at the given RBER, ramping
    /// from 1 to [`EccModel::max_iterations`].
    pub fn avg_iterations(&self, rber: f64) -> f64 {
        1.0 + (self.max_iterations as f64 - 1.0)
            * normal_cdf((rber - self.iter50) / self.iter_sigma)
    }

    /// The decoder's iteration cap.
    pub fn max_iterations(&self) -> u32 {
        self.max_iterations
    }

    /// Expected decoding latency at the given RBER: one
    /// `t_iter_us`-microsecond pass per iteration (Table I: 1–20 µs).
    pub fn t_ecc(&self, rber: f64) -> SimDuration {
        SimDuration::from_us_f64(self.avg_iterations(rber) * self.t_iter_us)
    }

    /// Decoding latency of a *failed* decode: the engine always burns the
    /// full iteration budget before declaring failure.
    pub fn t_ecc_failure(&self) -> SimDuration {
        SimDuration::from_us_f64(self.max_iterations as f64 * self.t_iter_us)
    }

    /// Samples whether a decode of a page with the given RBER fails.
    pub fn sample_failure(&self, rber: f64, rng: &mut SimRng) -> bool {
        rng.chance(self.failure_probability(rber))
    }
}

/// Inverse normal CDF (Acklam's rational approximation, |ε| < 1.15e-9).
///
/// # Panics
///
/// Panics unless `0 < p < 1`.
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument {p} out of (0,1)");
    probit(p)
}

fn probit(p: f64) -> f64 {
    debug_assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_690e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    let p_low = 0.024_25;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_cdf(1.281_552) - 0.9).abs() < 1e-5);
        assert!(normal_cdf(-6.0) < 1e-8);
        assert!(normal_cdf(6.0) > 1.0 - 1e-8);
    }

    #[test]
    fn probit_inverts_cdf() {
        for &p in &[0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
            let x = probit(p);
            assert!((normal_cdf(x) - p).abs() < 1e-6, "p={p}");
        }
    }

    #[test]
    fn paper_default_anchors() {
        let ecc = EccModel::paper_default();
        assert!((ecc.correction_capability() - 0.0085).abs() < 1e-9);
        assert!((ecc.failure_probability(0.0085) - 0.1).abs() < 0.005);
        // Fig. 3(b): iterations reach the 20 cap at the capability.
        assert!(ecc.avg_iterations(0.0085) > 18.0);
        assert!(ecc.avg_iterations(0.004) < 1.5);
        // tECC spans 1..=20 µs.
        assert!(ecc.t_ecc(0.001).as_us() >= 1.0);
        assert!(ecc.t_ecc(0.02).as_us() <= 20.001);
        assert_eq!(ecc.t_ecc_failure().as_us(), 20.0);
    }

    #[test]
    fn failure_probability_is_monotone() {
        let ecc = EccModel::paper_default();
        let mut last = 0.0;
        for i in 0..40 {
            let p = ecc.failure_probability(i as f64 * 0.0005);
            assert!(p >= last);
            last = p;
        }
    }

    #[test]
    fn sample_failure_tracks_probability() {
        let ecc = EccModel::paper_default();
        let mut rng = SimRng::seed_from(77);
        let trials = 20_000;
        let rate = (0..trials)
            .filter(|_| ecc.sample_failure(0.0085, &mut rng))
            .count() as f64
            / trials as f64;
        assert!((rate - 0.1).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn fit_recovers_probit_parameters() {
        // Generate clean points from a known model, refit, compare.
        let truth = EccModel::paper_default();
        let points: Vec<CapabilityPoint> = (2..=13)
            .map(|i| {
                let rber = i as f64 * 0.001;
                CapabilityPoint {
                    rber,
                    failure_probability: truth.failure_probability(rber),
                    avg_iterations: truth.avg_iterations(rber),
                    trials: 100_000,
                }
            })
            .collect();
        let fitted = EccModel::fit(&points);
        assert!(
            (fitted.correction_capability() - truth.correction_capability()).abs() < 3e-4,
            "fitted cap {}",
            fitted.correction_capability()
        );
    }

    #[test]
    fn with_parameters_validates() {
        let m = EccModel::with_parameters(0.009, 0.0005, 0.007, 0.0008, 20, 1.0);
        assert_eq!(m.max_iterations(), 20);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_sigma() {
        let _ = EccModel::with_parameters(0.009, 0.0, 0.007, 0.0008, 20, 1.0);
    }
}
