//! Codeword rearrangement for hardware-friendly on-die syndrome
//! computation (paper §V-B, Fig. 15).
//!
//! The bits feeding each pruned syndrome are scattered across the codeword
//! by the circulant shifts `C(1,j)`. Rotating segment `j` left by `C(1,j)`
//! turns every first-block-row circulant into the identity, reducing the
//! syndrome computation to a straight XOR of segments followed by a
//! popcount — exactly what the RP module's 128-bit datapath does (Fig. 16).
//!
//! The flash controller applies [`QcLdpcCode::rearrange`] *after* ECC
//! encoding (before programming) and [`QcLdpcCode::restore`] *before* ECC
//! decoding (after reading), so the off-chip LDPC engine always sees the
//! original layout.

use crate::bits::BitVec;
use crate::code::QcLdpcCode;

impl QcLdpcCode {
    /// Rotates every segment that participates in the first block row left
    /// by its shift coefficient, producing the on-flash layout.
    ///
    /// # Panics
    ///
    /// Panics if `cw` is not [`QcLdpcCode::n`] bits long.
    pub fn rearrange(&self, cw: &BitVec) -> BitVec {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        let h = self.matrix();
        let t = h.t();
        let mut out = BitVec::zeros(self.n());
        for j in 0..h.cols_b() {
            let seg = cw.slice(j * t, t);
            let placed = match h.coeff(0, j) {
                Some(shift) => seg.rotate_left(shift),
                None => seg,
            };
            out.copy_from(j * t, &placed);
        }
        out
    }

    /// Inverse of [`QcLdpcCode::rearrange`]: recovers the original codeword
    /// layout from the on-flash layout.
    pub fn restore(&self, rearranged: &BitVec) -> BitVec {
        assert_eq!(rearranged.len(), self.n(), "codeword length mismatch");
        let h = self.matrix();
        let t = h.t();
        let mut out = BitVec::zeros(self.n());
        for j in 0..h.cols_b() {
            let seg = rearranged.slice(j * t, t);
            let placed = match h.coeff(0, j) {
                Some(shift) => seg.rotate_right(shift),
                None => seg,
            };
            out.copy_from(j * t, &placed);
        }
        out
    }

    /// Pruned syndrome weight computed directly on the *rearranged* layout:
    /// XOR of all first-block-row segments (now identity circulants), then
    /// a popcount. This is the operation the RP hardware performs.
    pub fn pruned_weight_rearranged(&self, rearranged: &BitVec) -> usize {
        assert_eq!(rearranged.len(), self.n(), "codeword length mismatch");
        let h = self.matrix();
        let t = h.t();
        let mut acc = BitVec::zeros(t);
        for j in 0..h.cols_b() {
            if h.coeff(0, j).is_some() {
                acc.xor_assign(&rearranged.slice(j * t, t));
            }
        }
        acc.count_ones()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Bsc;
    use rif_events::SimRng;

    #[test]
    fn rearrange_restore_roundtrip() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(31);
        for _ in 0..10 {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            assert_eq!(code.restore(&code.rearrange(&cw)), cw);
        }
    }

    #[test]
    fn rearranged_weight_equals_conventional_pruned_weight() {
        // The crux of §V-B: the simplified XOR-of-segments computation on
        // the rearranged layout must equal the true first-block-row
        // syndrome weight of the original layout.
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(32);
        for &p in &[0.0, 0.001, 0.01, 0.05] {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = Bsc::new(p).corrupt(&cw, &mut rng);
            let expected = code.pruned_syndrome_weight(&noisy);
            let got = code.pruned_weight_rearranged(&code.rearrange(&noisy));
            assert_eq!(got, expected, "p={p}");
        }
    }

    #[test]
    fn errors_commute_with_rearrangement() {
        // Flipping bits on the flash array (rearranged layout) and restoring
        // is the same as restoring and flipping the corresponding bits:
        // rotation is a permutation, so error *counts* are preserved.
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(33);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let stored = code.rearrange(&cw);
        let noisy_stored = Bsc::new(0.01).corrupt(&stored, &mut rng);
        let restored = code.restore(&noisy_stored);
        assert_eq!(
            stored.hamming_distance(&noisy_stored),
            cw.hamming_distance(&restored)
        );
    }

    #[test]
    fn clean_rearranged_codeword_has_zero_pruned_weight() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(34);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        assert_eq!(code.pruned_weight_rearranged(&code.rearrange(&cw)), 0);
    }

    #[test]
    fn rearrange_only_permutes_within_segments() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(35);
        let cw = BitVec::random(code.n(), &mut rng);
        let re = code.rearrange(&cw);
        let t = code.matrix().t();
        for j in 0..code.matrix().cols_b() {
            let orig = cw.slice(j * t, t);
            let moved = re.slice(j * t, t);
            assert_eq!(orig.count_ones(), moved.count_ones(), "segment {j}");
        }
    }
}
