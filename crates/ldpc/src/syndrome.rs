//! Syndrome computation and the RP module's approximations.
//!
//! The syndrome of a sensed page is the quantity the ODEAR engine's RP
//! module thresholds (paper §IV-B): `S = H·x`, whose Hamming weight grows
//! monotonically with the page's RBER (Fig. 10). Two approximations make
//! on-die computation cheap (§V-A):
//!
//! * **chunk-based prediction** — only one 4-KiB codeword of a 16-KiB page
//!   is inspected (errors are uniform within a page, Fig. 12), and
//! * **syndrome pruning** — only the first `t` syndromes (the first block
//!   row of `H`) are computed; the remaining block rows merely recombine the
//!   same bits (§V-A2).

use crate::bits::BitVec;
use crate::code::QcLdpcCode;

impl QcLdpcCode {
    /// Full syndrome `H·x` of a (possibly corrupted) codeword: one bit per
    /// parity check, block row `i` occupying bits `[i·t, (i+1)·t)`.
    ///
    /// Computed segment-at-a-time: the circulant `Q(s)` applied to segment
    /// `d` is `rotate_left(d, s)`, so each block contributes one rotated
    /// XOR — no per-edge work.
    ///
    /// # Panics
    ///
    /// Panics if `cw` is not [`QcLdpcCode::n`] bits long.
    pub fn syndrome(&self, cw: &BitVec) -> BitVec {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        let h = self.matrix();
        let t = h.t();
        let mut syn = BitVec::zeros(h.m());
        for i in 0..h.rows_b() {
            let row = self.block_row_syndrome(cw, i);
            syn.copy_from(i * t, &row);
        }
        syn
    }

    /// Syndrome bits of one block row (a `t`-bit vector).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `cw` has the wrong length.
    pub fn block_row_syndrome(&self, cw: &BitVec, i: usize) -> BitVec {
        assert_eq!(cw.len(), self.n(), "codeword length mismatch");
        let h = self.matrix();
        let t = h.t();
        let mut acc = BitVec::zeros(t);
        for b in h.row_blocks(i) {
            let seg = cw.slice(b.col * t, t);
            acc.xor_assign(&seg.rotate_left(b.shift));
        }
        acc
    }

    /// Hamming weight of the full syndrome (`Σ s_k` over all `r·t` checks).
    pub fn syndrome_weight(&self, cw: &BitVec) -> usize {
        self.syndrome(cw).count_ones()
    }

    /// Hamming weight of the *pruned* syndrome: only the first block row's
    /// `t` checks, as computed by the RP module (paper §V-A2, footnote 6:
    /// 1 024 of 4 096 syndromes).
    pub fn pruned_syndrome_weight(&self, cw: &BitVec) -> usize {
        self.block_row_syndrome(cw, 0).count_ones()
    }

    /// Expected per-check syndrome probability at raw bit-error rate `p`
    /// for a check of degree `d`: `(1 − (1−2p)^d) / 2`.
    ///
    /// An even number of errors among the `d` participating bits leaves the
    /// check satisfied; this is the standard parity-of-binomial identity
    /// and underlies the RBER ↔ syndrome-weight correlation of Fig. 10.
    pub fn syndrome_probability(degree: usize, p: f64) -> f64 {
        (1.0 - (1.0 - 2.0 * p).powi(degree as i32)) / 2.0
    }

    /// Analytic expectation of the pruned syndrome weight at RBER `p`:
    /// `t · (1 − (1−2p)^w0) / 2` with `w0` the first block row's weight.
    pub fn expected_pruned_weight(&self, p: f64) -> f64 {
        let h = self.matrix();
        h.t() as f64 * Self::syndrome_probability(h.row_weight(0), p)
    }

    /// Analytic expectation of the full syndrome weight at RBER `p`.
    pub fn expected_full_weight(&self, p: f64) -> f64 {
        let h = self.matrix();
        (0..h.rows_b())
            .map(|i| h.t() as f64 * Self::syndrome_probability(h.row_weight(i), p))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::Bsc;
    use rif_events::SimRng;

    #[test]
    fn syndrome_zero_for_codewords() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(1);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        assert!(code.syndrome(&cw).is_zero());
        assert_eq!(code.syndrome_weight(&cw), 0);
        assert_eq!(code.pruned_syndrome_weight(&cw), 0);
    }

    #[test]
    fn syndrome_matches_per_edge_definition() {
        // Cross-check the fast rotated-XOR syndrome against a naive
        // bit-by-bit evaluation of H·x.
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(2);
        let mut cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        for _ in 0..30 {
            cw.flip(rng.index(code.n()));
        }
        let h = code.matrix();
        let t = h.t();
        let fast = code.syndrome(&cw);
        for i in 0..h.rows_b() {
            for k in 0..t {
                let mut bit = false;
                for b in h.row_blocks(i) {
                    bit ^= cw.get(h.var_of(b, k));
                }
                assert_eq!(fast.get(i * t + k), bit, "check ({i},{k})");
            }
        }
    }

    #[test]
    fn single_error_hits_column_weight_checks() {
        let code = QcLdpcCode::small_test();
        let cw = BitVec::zeros(code.n());
        for j in [0usize, 5, 33] {
            let mut bad = cw.clone();
            bad.flip(j * code.matrix().t() + 3);
            assert_eq!(
                code.syndrome_weight(&bad),
                code.matrix().column_weight(j),
                "segment {j}"
            );
        }
    }

    #[test]
    fn weight_grows_with_rber() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(3);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let mut prev = 0.0;
        for &p in &[0.001, 0.004, 0.008, 0.016] {
            let mut acc = 0usize;
            let trials = 20;
            for _ in 0..trials {
                let noisy = Bsc::new(p).corrupt(&cw, &mut rng);
                acc += code.syndrome_weight(&noisy);
            }
            let avg = acc as f64 / trials as f64;
            assert!(avg > prev, "avg weight not increasing at p={p}");
            prev = avg;
        }
    }

    #[test]
    fn analytic_expectation_matches_monte_carlo() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(4);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let p = 0.006;
        let trials = 400;
        let mut pruned = 0usize;
        let mut full = 0usize;
        for _ in 0..trials {
            let noisy = Bsc::new(p).corrupt(&cw, &mut rng);
            pruned += code.pruned_syndrome_weight(&noisy);
            full += code.syndrome_weight(&noisy);
        }
        let mc_pruned = pruned as f64 / trials as f64;
        let mc_full = full as f64 / trials as f64;
        let an_pruned = code.expected_pruned_weight(p);
        let an_full = code.expected_full_weight(p);
        assert!(
            (mc_pruned - an_pruned).abs() / an_pruned < 0.10,
            "pruned MC {mc_pruned} vs analytic {an_pruned}"
        );
        assert!(
            (mc_full - an_full).abs() / an_full < 0.10,
            "full MC {mc_full} vs analytic {an_full}"
        );
    }

    #[test]
    fn syndrome_probability_limits() {
        assert_eq!(QcLdpcCode::syndrome_probability(36, 0.0), 0.0);
        let half = QcLdpcCode::syndrome_probability(36, 0.5);
        assert!((half - 0.5).abs() < 1e-12);
        let p = QcLdpcCode::syndrome_probability(36, 0.0085);
        assert!(p > 0.2 && p < 0.3, "got {p}");
    }

    #[test]
    fn pruned_weight_equals_first_block_row_of_full() {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(5);
        let mut cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        for _ in 0..10 {
            cw.flip(rng.index(code.n()));
        }
        let t = code.matrix().t();
        let full = code.syndrome(&cw);
        let first_row_ones = (0..t).filter(|&k| full.get(k)).count();
        assert_eq!(code.pruned_syndrome_weight(&cw), first_row_ones);
    }
}
