//! The discrete-event SSD engine.
//!
//! Resources and their interactions mirror the target SSD of Fig. 5:
//!
//! * **dies** execute sense / program / erase commands, one at a time, all
//!   planes in lockstep (multi-plane operation);
//! * **channels** serialize page DMA transfers (tDMA per 16-KiB page); a
//!   read transfer may only start when the channel's ECC engine has buffer
//!   space — otherwise the channel sits in ECCWAIT (§III-B3);
//! * **channel-level ECC engines** decode one page at a time with an
//!   RBER-dependent latency (1–20 µs), holding buffered pages until done;
//! * the **host link** serializes completed read data and incoming write
//!   data at 8 GB/s.
//!
//! Host requests are admitted up to the queue depth; each read request
//! splits into per-die *slot groups* (up to 4 pages sensed by one
//! multi-plane command) that flow through sense → transfer → decode, with
//! scheme-specific retry behaviour on decode failure.

use std::collections::VecDeque;

use rif_events::trace::{labeled, MetricsRegistry, TraceSink, Tracer};
use rif_events::{EventQueue, LatencyHistogram, SimDuration, SimRng, SimTime, UtilizationTracker};
use rif_flash::geometry::PageKind;
use rif_flash::learn::{ReadOutcome, ThresholdLearner};
use rif_flash::rber::BlockProfile;
use rif_flash::swift_read::SwiftRead;
use rif_flash::vth::OperatingPoint;
use rif_workloads::{IoOp, IoRequest, Trace};

use crate::config::SsdConfig;
use crate::ftl::{Ftl, SlotLocation};
use crate::hybrid::{
    AmpTable, BgKind, HybridConfig, HybridFtl, MigrationPolicy, AMPLIFIED_RBER_CAP,
    AMPLIFIED_RBER_FLOOR,
};
use crate::refresh::RefreshPolicy;
use crate::report::{ChannelUsage, HybridSummary, LearnerSummary, SimReport};
use crate::retention::RetentionTracker;
use crate::retry::RetryKind;

const ST_IDLE: usize = 0;
const ST_COR: usize = 1;
const ST_UNCOR: usize = 2;
const ST_ECCWAIT: usize = 3;

/// Trace names for the four channel states, indexed by `ST_*`.
const ST_NAMES: [&str; 4] = ["IDLE", "COR", "UNCOR", "ECCWAIT"];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ev {
    Arrive(usize),
    DieDone(usize, u32),
    ChanDone(usize),
    EccDone(usize),
    HostDone,
    /// Periodic background-scheduler tick (hybrid mode only). Disarms
    /// itself when no requests are left, so `run()` still terminates.
    BgTick,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GroupPhase {
    /// First sense + transfer + decode.
    Initial,
    /// SENC only: transferring sentinel cells before the corrective read.
    SentinelRead,
    /// Corrective re-read after a decode failure.
    Retry,
}

#[derive(Debug)]
struct ReadGroup {
    req: usize,
    slot: u64,
    loc: SlotLocation,
    n_pages: usize,
    kind: PageKind,
    /// Operating point the group is read at (drift-adjusted when the
    /// drift clock runs).
    op: OperatingPoint,
    /// Process-variation profile of the block holding the slot.
    block: BlockProfile,
    /// Global block id — the learner's key.
    block_id: u64,
    rber_optimal: f64,
    /// RBER of the currently sensed data.
    cur_rber: f64,
    /// RBER the first decode attempt saw (the syndrome-weight signal the
    /// learned controller observes).
    first_rber: f64,
    /// Uniform V_REF offset the latest ones-count re-calibration settled
    /// on (learned mode only).
    recal_offset: Option<f64>,
    /// Whether every page of the current phase fails its decode.
    decode_fails: bool,
    /// Per-page latency the ECC engine spends in the current phase.
    decode_duration: SimDuration,
    /// Pages still owed a decode (or sentinel transfer) in the current
    /// phase.
    pages_remaining: usize,
    phase: GroupPhase,
    attempt: u32,
    /// RiF: whether the ODEAR engine retried before the transfer.
    rif_retried_in_die: bool,
    /// RBER amplification of the cell mode holding the slot (1 for TLC;
    /// set from the [`AmpTable`] in hybrid mode).
    amp: f64,
    /// Trace span covering the group's life (0 when tracing is off).
    span: u64,
}

#[derive(Debug)]
enum DieCmd {
    Sense {
        group: usize,
        duration: SimDuration,
    },
    Program {
        req: usize,
        duration: SimDuration,
        suspensions: u8,
    },
    /// Background work occupying the die: GC relocation+erase, SLC→QLC
    /// migration copyback, or a refresh rewrite.
    Bg {
        kind: BgKind,
        duration: SimDuration,
        suspensions: u8,
    },
}

#[derive(Debug, Default)]
struct Die {
    busy: bool,
    current: Option<DieCmd>,
    queue: VecDeque<DieCmd>,
    /// Invalidates in-flight DieDone events after a suspension.
    epoch: u32,
    /// When the current command will finish (valid while busy).
    busy_until: SimTime,
    /// Trace span of the in-flight command (0 when tracing is off).
    current_span: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum XferKind {
    /// Read page headed for the ECC engine.
    ReadPage { group: usize },
    /// SENC sentinel-cell read (overhead; bypasses the ECC buffer).
    Sentinel { group: usize },
    /// Write data headed for a die program.
    WritePage { job: usize },
}

#[derive(Debug, Clone, Copy)]
struct Transfer {
    kind: XferKind,
    uncor: bool,
}

#[derive(Debug)]
struct Channel {
    busy: bool,
    current: Option<Transfer>,
    queue: VecDeque<Transfer>,
    tracker: UtilizationTracker,
    /// Trace span of the in-flight transfer (0 when tracing is off).
    current_span: u64,
}

#[derive(Debug, Default)]
struct EccEngine {
    busy: bool,
    current: Option<usize>, // group id
    queue: VecDeque<usize>,
    /// Pages occupying the input buffer (reserved at transfer start).
    pending: usize,
    /// Trace span of the in-flight decode (0 when tracing is off).
    current_span: u64,
    /// Start of the in-flight decode (valid while busy).
    busy_since: SimTime,
    /// Accumulated decoding time, for the utilization metric.
    busy_total: SimDuration,
}

#[derive(Debug)]
struct Request {
    arrival: SimTime,
    op: IoOp,
    offset: u64,
    bytes: u32,
    remaining: usize,
    done: bool,
    /// Trace span from admission to completion (0 when tracing is off).
    span: u64,
}

/// A finished host request, as surfaced by
/// [`Simulator::drain_completions`].
///
/// The service layer built on the stepper API uses these to answer the
/// wire requests it injected with [`Simulator::submit`]; batch callers
/// can ignore them (the [`SimReport`] aggregates the same data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The id returned by the [`Simulator::submit`] call that started
    /// this request (its position in submission order).
    pub id: u64,
    /// Read or write.
    pub op: IoOp,
    /// Starting logical byte address.
    pub offset: u64,
    /// Request length in bytes.
    pub bytes: u32,
    /// When the request arrived (after any clamping to the clock).
    pub arrival: SimTime,
    /// When the last byte reached the host (reads) or the program
    /// finished (writes).
    pub finished: SimTime,
}

impl Completion {
    /// End-to-end latency on the simulation clock.
    pub fn latency(&self) -> SimDuration {
        self.finished.since(self.arrival)
    }
}

#[derive(Debug)]
struct WriteJob {
    req: usize,
    die_linear: usize,
    remaining_transfers: usize,
    program_duration: SimDuration,
    gc_duration: SimDuration,
}

#[derive(Debug, Clone, Copy)]
enum HostJob {
    ReadCompletion { req: usize },
    WriteIngress { req: usize },
}

/// Live state of the hybrid subsystem (DESIGN §14): the hybrid FTL, the
/// precomputed cell-mode RBER amplification table, and the background
/// scheduler's bookkeeping.
struct HybridState {
    ftl: HybridFtl,
    amp: AmpTable,
    conf: HybridConfig,
    /// Whether a `BgTick` event is pending in the queue.
    tick_armed: bool,
    /// Next position in the FTL's touched-slot list the refresh scan
    /// examines (wraps).
    refresh_cursor: usize,
    migrated_slots: u64,
    refreshed_slots: u64,
    forced_evictions: u64,
    bg_ops: u64,
}

/// The simulator: owns the configuration, consumes a trace, produces a
/// [`SimReport`].
///
/// # Example
///
/// ```no_run
/// use rif_ssd::{Simulator, SsdConfig, RetryKind};
/// use rif_workloads::WorkloadProfile;
///
/// let trace = WorkloadProfile::by_name("Ali124").unwrap().generate(5_000, 1);
/// let report = Simulator::new(SsdConfig::paper(RetryKind::Rif, 1000)).run(&trace);
/// println!("{:.0} MB/s", report.io_bandwidth_mbps());
/// ```
pub struct Simulator {
    cfg: SsdConfig,
    rng: SimRng,
    events: EventQueue<Ev>,
    ftl: Ftl,
    /// Hybrid SLC/QLC subsystem; `None` keeps the pure-TLC device and
    /// `self.ftl` authoritative.
    hybrid: Option<HybridState>,
    retention: RetentionTracker,
    dies: Vec<Die>,
    channels: Vec<Channel>,
    ecc: Vec<EccEngine>,
    host_busy: bool,
    host_queue: VecDeque<HostJob>,
    host_current: Option<HostJob>,
    requests: Vec<Request>,
    groups: Vec<ReadGroup>,
    write_jobs: Vec<WriteJob>,
    backlog: VecDeque<usize>,
    outstanding: usize,
    completions: Vec<Completion>,
    // Online threshold learning (oracle mode leaves all three inert).
    learner: Option<ThresholdLearner>,
    swift: Option<SwiftRead>,
    learn_err_sum: f64,
    learn_err_samples: u64,
    // Observability (both off by default and free when off).
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
    /// Trace span of the in-flight host-link job.
    host_span: u64,
    // Statistics.
    read_latency: LatencyHistogram,
    completed_requests: u64,
    completed_bytes: u64,
    read_bytes: u64,
    decode_failures: u64,
    in_die_retries: u64,
    uncor_page_transfers: u64,
    page_senses: u64,
    last_completion: SimTime,
}

impl Simulator {
    /// Builds a simulator from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration is invalid (see
    /// [`SsdConfig::validate`]).
    pub fn new(cfg: SsdConfig) -> Self {
        cfg.validate();
        let n_dies = cfg.geometry.channels * cfg.geometry.dies_per_channel;
        let channels = (0..cfg.geometry.channels)
            .map(|_| Channel {
                busy: false,
                current: None,
                queue: VecDeque::new(),
                tracker: UtilizationTracker::new(4),
                current_span: 0,
            })
            .collect();
        let learner = cfg
            .learning
            .learner_config()
            .map(|c| ThresholdLearner::new(*c));
        let swift = learner
            .as_ref()
            .map(|_| SwiftRead::new(cfg.error_model.tlc().clone()));
        let hybrid = cfg.hybrid.clone().map(|conf| HybridState {
            ftl: HybridFtl::new(cfg.geometry, conf.cache_fraction),
            // The table covers ages up to twice the refresh horizon;
            // clamped lookups handle deeper drift.
            amp: AmpTable::build(cfg.pe_cycles, cfg.refresh_days * 2.0),
            conf,
            tick_armed: false,
            refresh_cursor: 0,
            migrated_slots: 0,
            refreshed_slots: 0,
            forced_evictions: 0,
            bg_ops: 0,
        });
        Simulator {
            rng: SimRng::seed_from(cfg.seed),
            ftl: Ftl::new(cfg.geometry),
            hybrid,
            learner,
            swift,
            learn_err_sum: 0.0,
            learn_err_samples: 0,
            retention: RetentionTracker::new(cfg.refresh_days, cfg.seed ^ 0xA5E),
            dies: (0..n_dies).map(|_| Die::default()).collect(),
            channels,
            ecc: (0..cfg.geometry.channels)
                .map(|_| EccEngine::default())
                .collect(),
            host_busy: false,
            host_queue: VecDeque::new(),
            host_current: None,
            events: EventQueue::new(),
            requests: Vec::new(),
            groups: Vec::new(),
            write_jobs: Vec::new(),
            backlog: VecDeque::new(),
            outstanding: 0,
            completions: Vec::new(),
            tracer: Tracer::disabled(),
            metrics: None,
            host_span: 0,
            read_latency: LatencyHistogram::new(),
            completed_requests: 0,
            completed_bytes: 0,
            read_bytes: 0,
            decode_failures: 0,
            in_die_retries: 0,
            uncor_page_transfers: 0,
            page_senses: 0,
            last_completion: SimTime::ZERO,
            cfg,
        }
    }

    /// Attaches a trace sink: the run emits the request-lifecycle span
    /// tree, engine counters, and channel-state records described in the
    /// [`rif_events::trace`] schema. Without a sink every trace callsite
    /// is a single predictable branch.
    pub fn with_tracer(mut self, sink: Box<dyn TraceSink>) -> Self {
        self.tracer = Tracer::to_sink(sink);
        self
    }

    /// Enables the in-run [`MetricsRegistry`]; the populated registry is
    /// returned in [`SimReport::metrics`].
    pub fn with_metrics(mut self) -> Self {
        self.metrics = Some(MetricsRegistry::new());
        self
    }

    /// True when any observability output is being collected.
    #[inline]
    fn observing(&self) -> bool {
        self.tracer.enabled() || self.metrics.is_some()
    }

    /// Emits a counter increment to the trace and the metrics registry.
    fn count(&mut self, now: SimTime, key: &str, delta: u64) {
        self.tracer.counter(now, key, delta);
        if let Some(m) = &mut self.metrics {
            m.inc(key, delta);
        }
    }

    /// Switches a channel's utilization state, mirroring real state
    /// changes into the trace.
    fn switch_chan(&mut self, now: SimTime, ch: usize, state: usize) {
        if self.tracer.enabled() && self.channels[ch].tracker.state() != state {
            self.tracer
                .state(now, &format!("chan:{ch}"), ST_NAMES[state]);
        }
        self.channels[ch].tracker.switch(now, state);
    }

    /// Records a die's queue depth after it changed.
    fn note_die_queue(&mut self, now: SimTime, die: usize) {
        if !self.observing() {
            return;
        }
        let depth = self.dies[die].queue.len();
        if self.tracer.enabled() {
            self.tracer
                .gauge(now, &format!("die.{die}.qdepth"), depth as f64);
        }
        if let Some(m) = &mut self.metrics {
            m.max_gauge("die.max_qdepth", depth as f64);
        }
    }

    /// Runs the trace to completion and returns the report.
    ///
    /// This is a thin wrapper over the incremental stepper API: every
    /// request is [`submitted`](Simulator::submit) up-front, the event
    /// loop is advanced past the last event, and the accumulated state is
    /// [`finished`](Simulator::finish) into a report. Driving the stepper
    /// by hand with the same trace yields a byte-identical canonical
    /// report (see the `sim_determinism_golden` suite).
    pub fn run(mut self, trace: &Trace) -> SimReport {
        for r in trace.iter() {
            self.submit(*r);
        }
        self.advance_until(SimTime::MAX);
        self.finish()
    }

    // ----- stepper API ---------------------------------------------------

    /// Injects one host request into the live event loop and returns its
    /// id (submission order, also the [`Completion::id`] it completes
    /// under).
    ///
    /// An arrival earlier than the simulation clock is clamped to the
    /// clock: the request arrives "now". This is what lets a service
    /// layer feed wall-clock-paced arrivals into a running simulation
    /// without ever scheduling into the past.
    pub fn submit(&mut self, r: IoRequest) -> u64 {
        let id = self.requests.len();
        let arrival = r.arrival.max(self.events.now());
        self.requests.push(Request {
            arrival,
            op: r.op,
            offset: r.offset,
            bytes: r.bytes,
            remaining: 0,
            done: false,
            span: 0,
        });
        self.events.schedule(arrival, Ev::Arrive(id));
        self.arm_bg_tick();
        id as u64
    }

    /// Schedules the next background-scheduler tick if hybrid mode is on
    /// and none is pending.
    fn arm_bg_tick(&mut self) {
        let tick = match self.hybrid.as_mut() {
            Some(h) if !h.tick_armed => {
                h.tick_armed = true;
                h.conf.bg.tick
            }
            _ => return,
        };
        let at = self.events.now() + tick;
        self.events.schedule(at, Ev::BgTick);
    }

    /// Processes every pending event with a timestamp at or before
    /// `limit`, returning the number of events handled. The clock never
    /// moves past the last handled event, so a later [`Simulator::submit`]
    /// may still arrive anywhere in `(clock, limit]`.
    pub fn advance_until(&mut self, limit: SimTime) -> usize {
        let mut handled = 0;
        while let Some(at) = self.events.peek_time() {
            if at > limit {
                break;
            }
            let (now, ev) = self.events.pop().expect("peeked event exists");
            match ev {
                Ev::Arrive(i) => self.on_arrive(now, i),
                Ev::DieDone(d, epoch) => self.on_die_done(now, d, epoch),
                Ev::ChanDone(c) => self.on_chan_done(now, c),
                Ev::EccDone(c) => self.on_ecc_done(now, c),
                Ev::HostDone => self.on_host_done(now),
                Ev::BgTick => self.on_bg_tick(now),
            }
            handled += 1;
        }
        handled
    }

    /// Takes the requests completed since the last drain, in completion
    /// order.
    pub fn drain_completions(&mut self) -> Vec<Completion> {
        std::mem::take(&mut self.completions)
    }

    /// The simulation clock (timestamp of the last handled event).
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Timestamp of the next pending event, if any.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.events.peek_time()
    }

    /// Number of pending events in the queue.
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Submitted requests that have not completed yet (in flight or
    /// backlogged behind the queue depth).
    pub fn unfinished_requests(&self) -> usize {
        self.requests.len() - self.completed_requests as usize
    }

    /// Snapshot of the threshold learner's state (`None` in oracle mode).
    /// Live during a stepper-driven run, so a serving layer can export
    /// the learner's progress while requests are still in flight.
    pub fn learner_summary(&self) -> Option<LearnerSummary> {
        self.learner.as_ref().map(|l| {
            let s = l.stats();
            LearnerSummary {
                updates: s.updates,
                recalibrations: s.recalibrations,
                clamps: s.clamps,
                blocks_tracked: l.blocks_tracked() as u64,
                mean_abs_error: if self.learn_err_samples == 0 {
                    0.0
                } else {
                    self.learn_err_sum / self.learn_err_samples as f64
                },
            }
        })
    }

    /// Exports the threshold learner's full transferable state (`None`
    /// in oracle mode). The cluster layer serializes this to hand a
    /// migrating shard's learned offsets to the target node.
    pub fn learner_state(&self) -> Option<rif_flash::learn::LearnerState> {
        self.learner.as_ref().map(|l| l.export_state())
    }

    /// Preseeds the threshold learner from a transferred snapshot,
    /// replacing any estimates and counters accumulated so far. A no-op
    /// in oracle mode (there is no learner to seed).
    pub fn preseed_learner(&mut self, state: &rif_flash::learn::LearnerState) {
        if let Some(cfg) = self.cfg.learning.learner_config() {
            self.learner = Some(ThresholdLearner::restore(*cfg, state));
        }
    }

    /// Consumes the simulator and produces the aggregate report for
    /// everything simulated so far.
    pub fn finish(mut self) -> SimReport {
        let end = self.last_completion;
        let learner_summary = self.learner_summary();
        let hybrid_summary = self.bg_summary();
        self.tracer.flush();
        let per_channel_usage: Vec<ChannelUsage> = std::mem::take(&mut self.channels)
            .into_iter()
            .map(|c| ChannelUsage::from_fractions(&c.tracker.fractions(end)))
            .collect();
        let metrics = self.metrics.take().map(|mut m| {
            // End-of-run gauges: channel/ECC utilization and the
            // scheme-labeled retry totals of this run.
            let scheme = self.cfg.retry.label();
            let span_ns = end.as_ns();
            for (i, u) in per_channel_usage.iter().enumerate() {
                m.set_gauge(&format!("chan.{i}.cor_frac"), u.cor);
                m.set_gauge(&format!("chan.{i}.uncor_frac"), u.uncor);
                m.set_gauge(&format!("chan.{i}.eccwait_frac"), u.eccwait);
            }
            let mean = ChannelUsage::mean(&per_channel_usage);
            m.set_gauge("chan.mean.eccwait_frac", mean.eccwait);
            m.set_gauge("chan.mean.wasted_frac", mean.wasted());
            for (i, e) in self.ecc.iter().enumerate() {
                let util = if span_ns == 0 {
                    0.0
                } else {
                    e.busy_total.as_ns() as f64 / span_ns as f64
                };
                m.set_gauge(&format!("ecc.{i}.util"), util);
            }
            m.inc(&labeled("retries.in_die", scheme), self.in_die_retries);
            m.inc(&labeled("decode.failures", scheme), self.decode_failures);
            if let Some(ls) = &learner_summary {
                m.set_gauge("learner.blocks_tracked", ls.blocks_tracked as f64);
                m.set_gauge("learner.mean_abs_error", ls.mean_abs_error);
            }
            if let Some(hs) = &hybrid_summary {
                m.set_gauge("bg.cache_occupancy", hs.cache_occupancy);
                m.set_gauge("bg.migrated_slots", hs.migrated_slots as f64);
                m.set_gauge("bg.refreshed_slots", hs.refreshed_slots as f64);
            }
            m.set_gauge("makespan_us", end.as_us());
            m
        });
        SimReport {
            metrics,
            learner: learner_summary,
            scheme: self.cfg.retry,
            pe_cycles: self.cfg.pe_cycles,
            completed_requests: self.completed_requests,
            completed_bytes: self.completed_bytes,
            read_bytes: self.read_bytes,
            makespan: end.since(SimTime::ZERO),
            read_latency: self.read_latency,
            per_channel_usage,
            decode_failures: self.decode_failures,
            in_die_retries: self.in_die_retries,
            uncor_page_transfers: self.uncor_page_transfers,
            page_senses: self.page_senses,
            gc_relocations: match &self.hybrid {
                Some(h) => h.ftl.relocations(),
                None => self.ftl.relocations(),
            },
            hybrid: hybrid_summary,
        }
    }

    /// Snapshot of the hybrid subsystem's background-traffic state
    /// (`None` on a pure-TLC device). Live during a stepper-driven run,
    /// so the serving layer can export `bg.*` gauges while requests are
    /// in flight.
    pub fn bg_summary(&self) -> Option<HybridSummary> {
        self.hybrid.as_ref().map(|h| HybridSummary {
            cache_occupancy: h.ftl.cache_occupancy(),
            migrated_slots: h.migrated_slots,
            forced_evictions: h.forced_evictions,
            refreshed_slots: h.refreshed_slots,
            bg_ops: h.bg_ops,
        })
    }

    // ----- admission -----------------------------------------------------

    fn on_arrive(&mut self, now: SimTime, req: usize) {
        if self.outstanding < self.cfg.queue_depth {
            self.admit(now, req);
        } else {
            self.backlog.push_back(req);
        }
    }

    fn admit(&mut self, now: SimTime, req: usize) {
        self.outstanding += 1;
        if self.observing() {
            let (op, bytes) = (self.requests[req].op, self.requests[req].bytes as u64);
            let name = match op {
                IoOp::Read => "request_read",
                IoOp::Write => "request_write",
            };
            let span = self
                .tracer
                .span_begin(now, name, None, None, Some(req as u64), Some(bytes));
            self.requests[req].span = span;
            self.count(now, "requests.admitted", 1);
            if let Some(m) = &mut self.metrics {
                m.observe(
                    "queueing.admission_wait",
                    now.since(self.requests[req].arrival),
                );
            }
        }
        match self.requests[req].op {
            IoOp::Read => self.admit_read(now, req),
            // Write data first crosses the host link into the controller.
            IoOp::Write => self.host_enqueue(now, HostJob::WriteIngress { req }),
        }
    }

    /// The byte size of one slot (a multi-plane page group).
    fn slot_bytes(&self) -> u64 {
        (self.cfg.geometry.page_bytes * self.cfg.geometry.planes_per_die) as u64
    }

    /// Slot ranges `(slot, pages_in_slot)` covered by a request.
    fn slots_of(&self, req: usize) -> Vec<(u64, usize)> {
        let r = &self.requests[req];
        let sb = self.slot_bytes();
        let pb = self.cfg.geometry.page_bytes as u64;
        let end = r.offset + r.bytes as u64;
        let first = r.offset / sb;
        let last = (end - 1) / sb;
        (first..=last)
            .map(|slot| {
                let lo = r.offset.max(slot * sb);
                let hi = end.min((slot + 1) * sb);
                let pages = ((hi - lo).div_ceil(pb)) as usize;
                (slot, pages.max(1))
            })
            .collect()
    }

    fn admit_read(&mut self, now: SimTime, req: usize) {
        let slots = self.slots_of(req);
        self.requests[req].remaining = slots.len();
        for (slot, pages) in slots {
            let gid = self.new_read_group(now, req, slot, pages);
            let duration = self.initial_sense_duration(gid);
            let die = self.groups[gid].loc.die_linear;
            self.enqueue_read_sense(
                now,
                die,
                DieCmd::Sense {
                    group: gid,
                    duration,
                },
            );
        }
    }

    /// Resolves a read mapping through the active FTL.
    fn ftl_locate_read(&mut self, slot: u64) -> SlotLocation {
        match self.hybrid.as_mut() {
            Some(h) => h.ftl.locate_read(slot),
            None => self.ftl.locate_read(slot),
        }
    }

    /// Bumps the read-disturb counter through the active FTL.
    fn ftl_note_read(&mut self, loc: SlotLocation) -> u64 {
        match self.hybrid.as_mut() {
            Some(h) => h.ftl.note_read(loc),
            None => self.ftl.note_read(loc),
        }
    }

    fn new_read_group(&mut self, now: SimTime, req: usize, slot: u64, n_pages: usize) -> usize {
        let loc = self.ftl_locate_read(slot);
        let reads = self.ftl_note_read(loc);
        let age = self.retention.age_days(slot, now);
        let mut op = OperatingPoint {
            pe_cycles: self.cfg.pe_cycles,
            retention_days: age,
            reads,
        };
        if self.cfg.drift.enabled() {
            // Long serving runs age while serving: the drift clock turns
            // elapsed simulated time into extra retention and wear.
            let secs = now.since(SimTime::ZERO).as_ns() as f64 / 1e9;
            op.retention_days += self.cfg.drift.extra_days(secs);
            op.pe_cycles = op.pe_cycles.saturating_add(self.cfg.drift.extra_pe(secs));
        }
        let block = self.block_profile(loc);
        let block_id = loc.global_block(&self.cfg.geometry);
        let kind = loc.kind();
        // Hybrid mode reads the TLC-calibrated error model through the
        // cell mode's amplification factor: SLC-cache reads are
        // effectively error-free, QLC capacity reads far noisier.
        let amp = match self.hybrid.as_ref() {
            Some(h) => h
                .amp
                .factor(h.ftl.mode_of(loc, h.conf.capacity_mode), op.retention_days),
            None => 1.0,
        };
        let amplify = |r: f64| (r * amp).clamp(AMPLIFIED_RBER_FLOOR, AMPLIFIED_RBER_CAP);
        let rber_default = amplify(self.cfg.error_model.rber_default(block, op, kind));
        let rber_optimal = amplify(self.cfg.error_model.rber_optimal(block, op, kind));
        let initial = match &self.learner {
            // Learned mode: every scheme starts from the controller's
            // current per-block V_REF estimate, not the oracle tables.
            Some(l) => {
                let refs = l.refs_for(block_id, self.cfg.error_model.default_refs());
                amplify(self.cfg.error_model.rber_at(block, op, refs, kind))
            }
            None => self.cfg.retry.initial_rber(rber_default, rber_optimal),
        };
        let gid = self.groups.len();
        self.groups.push(ReadGroup {
            req,
            slot,
            loc,
            n_pages,
            kind,
            op,
            block,
            block_id,
            rber_optimal,
            cur_rber: initial,
            first_rber: initial,
            recal_offset: None,
            decode_fails: false,
            decode_duration: SimDuration::ZERO,
            pages_remaining: 0,
            phase: GroupPhase::Initial,
            attempt: 0,
            rif_retried_in_die: false,
            amp,
            span: 0,
        });
        self.setup_initial_phase(gid);
        if self.observing() {
            let parent = self.requests[req].span;
            self.groups[gid].span =
                self.tracer
                    .span_begin(now, "group", Some(parent), None, Some(req as u64), None);
            if self.groups[gid].rif_retried_in_die {
                self.count(now, "retries.in_die", 1);
                if self.groups[gid].recal_offset.is_some() {
                    self.emit_recal_marker(now, gid);
                }
            }
        }
        gid
    }

    /// Deterministic per-block process variation.
    fn block_profile(&self, loc: SlotLocation) -> BlockProfile {
        let id = loc.global_block(&self.cfg.geometry);
        let mut rng = SimRng::seed_from(id.wrapping_mul(0x517C_C1B7_2722_0A95) ^ self.cfg.seed);
        BlockProfile::sample(&mut rng)
    }

    fn forced_fail(&self, slot: u64) -> Option<bool> {
        self.cfg
            .forced_failure_slots
            .as_ref()
            .map(|f| f.contains(&slot))
    }

    /// Decides the initial-phase outcome: whether the sensed data will
    /// fail its off-chip decode, and (for RiF) whether the ODEAR engine
    /// retries in-die before transferring.
    fn setup_initial_phase(&mut self, gid: usize) {
        let initial = self.groups[gid].cur_rber;
        let optimal = self.groups[gid].rber_optimal;
        let forced = self.forced_fail(self.groups[gid].slot);
        let (cur, fails, in_die_retry, recal) = match self.cfg.retry {
            RetryKind::Zero => (initial, false, false, None),
            RetryKind::Rif => {
                let rp_retry = match forced {
                    Some(f) => f,
                    None => self.cfg.rp.sample_retry(initial, &mut self.rng),
                };
                if rp_retry {
                    // In-die retry: data re-sensed before any transfer.
                    // The oracle re-senses at near-optimal refs; the
                    // learned RVS runs its ones-count calibration and
                    // surfaces the offset it settled on.
                    let (rber, recal) = if self.learner.is_some() {
                        let (r, o) = self.recalibrate_rber(gid);
                        (r, Some(o))
                    } else {
                        (optimal, None)
                    };
                    let fails = match forced {
                        Some(_) => false,
                        None => self.cfg.ecc.sample_failure(rber, &mut self.rng),
                    };
                    (rber, fails, true, recal)
                } else {
                    // Transferred as-is; a missed prediction still fails
                    // at the off-chip decoder.
                    let fails = match forced {
                        Some(f) => f,
                        None => self.cfg.ecc.sample_failure(initial, &mut self.rng),
                    };
                    (initial, fails, false, None)
                }
            }
            _ => {
                let fails = match forced {
                    Some(f) => f,
                    None => self.cfg.ecc.sample_failure(initial, &mut self.rng),
                };
                (initial, fails, false, None)
            }
        };
        if in_die_retry {
            self.in_die_retries += 1;
        }
        let (dur, fail_out) = self.decode_profile(cur, fails, forced.is_some());
        let g = &mut self.groups[gid];
        g.cur_rber = cur;
        g.first_rber = cur;
        g.recal_offset = recal;
        g.decode_fails = fail_out;
        g.decode_duration = dur;
        g.attempt = 1;
        g.rif_retried_in_die = in_die_retry;
    }

    /// Runs the ones-count re-calibration (the Swift-Read / RVS flow) for
    /// a group's block and returns the RBER at the selected references
    /// plus the uniform offset they apply relative to the defaults — the
    /// noisy drift observation the learner consumes.
    fn recalibrate_rber(&mut self, gid: usize) -> (f64, f64) {
        let (op, block, kind) = {
            let g = &self.groups[gid];
            (g.op, g.block, g.kind)
        };
        let n_cells = self.cfg.geometry.page_bytes * 8;
        let sw = self.swift.as_ref().expect("learned mode has an estimator");
        let observed = sw.observe_ones(op, block.factor, kind, n_cells, &mut self.rng);
        let refs = sw.refs_from_observation(op.pe_cycles, kind, observed);
        let defaults = self.cfg.error_model.default_refs();
        let offset = refs
            .as_array()
            .iter()
            .zip(defaults.as_array())
            .map(|(r, d)| r - d)
            .sum::<f64>()
            / 7.0;
        let amp = self.groups[gid].amp;
        let rber = (self.cfg.error_model.rber_at(block, op, refs, kind) * amp)
            .clamp(AMPLIFIED_RBER_FLOOR, AMPLIFIED_RBER_CAP);
        (rber, offset)
    }

    /// Marks a learned re-calibration in the trace: a zero-length `retry`
    /// span with a nested zero-length `recal` child under the group span
    /// (the invariant the trace checker's learner rule pins).
    fn emit_recal_marker(&mut self, now: SimTime, gid: usize) {
        if !self.tracer.enabled() {
            return;
        }
        let parent = self.groups[gid].span;
        if parent == 0 {
            return;
        }
        let req = Some(self.groups[gid].req as u64);
        let retry = self
            .tracer
            .span_begin(now, "retry", Some(parent), None, req, None);
        let recal = self
            .tracer
            .span_begin(now, "recal", Some(retry), None, req, None);
        self.tracer.span_end(now, recal);
        self.tracer.span_end(now, retry);
    }

    /// Per-page ECC-engine occupancy and final outcome for a page of the
    /// given RBER whose raw decode `fails`. In forced-failure mode
    /// (`deterministic`) predictor verdicts follow the forced outcome.
    fn decode_profile(
        &mut self,
        rber: f64,
        fails: bool,
        deterministic: bool,
    ) -> (SimDuration, bool) {
        match self.cfg.retry {
            // SSDzero's decodes always succeed quickly.
            RetryKind::Zero => (self.cfg.ecc.t_ecc(rber.min(0.004)), false),
            RetryKind::RpSsd => {
                // Controller-side RP precedes decoding.
                let rp_says_retry = if deterministic {
                    fails
                } else {
                    self.cfg.rp.sample_retry(rber, &mut self.rng)
                };
                if rp_says_retry {
                    // Early termination: a 2.5-µs syndrome check replaces
                    // the long decode; the page goes to retry (even when
                    // actually correctable — a false positive).
                    (self.cfg.timing.t_pred, true)
                } else if fails {
                    // Missed: the hopeless decode burns the full budget.
                    (self.cfg.ecc.t_ecc_failure(), true)
                } else {
                    (self.cfg.ecc.t_ecc(rber), false)
                }
            }
            _ => {
                if fails {
                    (self.cfg.ecc.t_ecc_failure(), true)
                } else {
                    (self.cfg.ecc.t_ecc(rber), false)
                }
            }
        }
    }

    fn initial_sense_duration(&self, gid: usize) -> SimDuration {
        let t = self.cfg.timing;
        match self.cfg.retry {
            RetryKind::Rif => {
                if self.groups[gid].rif_retried_in_die {
                    t.t_r + t.t_pred + t.t_r
                } else {
                    t.t_r + t.t_pred
                }
            }
            _ => t.t_r,
        }
    }

    // ----- dies ------------------------------------------------------------

    fn die_try_start(&mut self, now: SimTime, die: usize) {
        if self.dies[die].busy {
            return;
        }
        let Some(cmd) = self.dies[die].queue.pop_front() else {
            return;
        };
        let duration = match &cmd {
            DieCmd::Sense { duration, .. } => *duration,
            DieCmd::Program { duration, .. } => *duration,
            DieCmd::Bg { duration, .. } => *duration,
        };
        let span = if self.tracer.enabled() {
            let (name, parent, req) = match &cmd {
                DieCmd::Sense { group, .. } => (
                    "sense",
                    self.groups[*group].span,
                    Some(self.groups[*group].req as u64),
                ),
                DieCmd::Program { req, .. } => {
                    ("program", self.requests[*req].span, Some(*req as u64))
                }
                // Background work gets root spans (no owning request) on
                // the die resource, so the trace checker's exclusivity
                // rule covers them automatically.
                DieCmd::Bg { kind, .. } => (kind.span_name(), 0, None),
            };
            self.tracer.span_begin(
                now,
                name,
                Some(parent),
                Some(&format!("die:{die}")),
                req,
                None,
            )
        } else {
            0
        };
        let d = &mut self.dies[die];
        d.busy = true;
        d.busy_until = now + duration;
        d.current = Some(cmd);
        d.current_span = span;
        let epoch = d.epoch;
        self.events
            .schedule(now + duration, Ev::DieDone(die, epoch));
    }

    /// Queues a read sense, preempting an in-flight program/erase when
    /// read suspend-resume is enabled: the remainder of the suspended
    /// command (plus the resume overhead) re-queues behind the read.
    fn enqueue_read_sense(&mut self, now: SimTime, die: usize, cmd: DieCmd) {
        let can_suspend = self.cfg.read_suspend
            && self.dies[die].busy
            && match &self.dies[die].current {
                Some(DieCmd::Program { suspensions, .. })
                | Some(DieCmd::Bg { suspensions, .. }) => *suspensions < 2,
                _ => false,
            }
            && self.dies[die].busy_until.saturating_since(now) > SimDuration::from_us(5);
        if can_suspend {
            if self.observing() {
                // The suspended command's span ends here; its resumed
                // remainder opens a fresh span when it restarts.
                let span = self.dies[die].current_span;
                if span != 0 {
                    self.tracer.span_end(now, span);
                    self.dies[die].current_span = 0;
                }
                self.count(now, "die.suspensions", 1);
            }
            let d = &mut self.dies[die];
            let remaining = d.busy_until.since(now) + self.cfg.suspend_overhead;
            let resumed = match d.current.take().expect("busy die has a command") {
                DieCmd::Program {
                    req, suspensions, ..
                } => DieCmd::Program {
                    req,
                    duration: remaining,
                    suspensions: suspensions + 1,
                },
                DieCmd::Bg {
                    kind, suspensions, ..
                } => DieCmd::Bg {
                    kind,
                    duration: remaining,
                    suspensions: suspensions + 1,
                },
                other => other,
            };
            d.epoch += 1; // invalidate the scheduled completion
            d.busy = false;
            d.queue.push_front(resumed);
            d.queue.push_front(cmd);
        } else if self.hybrid.as_ref().is_some_and(|h| h.conf.bg.fg_priority) {
            // Foreground-preempts policy: the read sense jumps ahead of
            // queued background work (never ahead of other foreground
            // commands, preserving read/program ordering).
            let q = &mut self.dies[die].queue;
            let at = q
                .iter()
                .position(|c| matches!(c, DieCmd::Bg { .. }))
                .unwrap_or(q.len());
            q.insert(at, cmd);
        } else {
            self.dies[die].queue.push_back(cmd);
        }
        self.note_die_queue(now, die);
        self.die_try_start(now, die);
    }

    fn on_die_done(&mut self, now: SimTime, die: usize, epoch: u32) {
        if epoch != self.dies[die].epoch {
            return; // completion of a command that was suspended
        }
        let cmd = self.dies[die].current.take().expect("die had no command");
        self.dies[die].busy = false;
        if self.dies[die].current_span != 0 {
            self.tracer.span_end(now, self.dies[die].current_span);
            self.dies[die].current_span = 0;
        }
        match cmd {
            DieCmd::Sense { group, .. } => {
                self.page_senses += self.groups[group].n_pages as u64;
                if self.observing() {
                    self.count(now, "pages.sensed", self.groups[group].n_pages as u64);
                }
                let uncor = match self.groups[group].phase {
                    // Sentinel-cell data is pure retry overhead.
                    GroupPhase::SentinelRead => true,
                    _ => self.groups[group].decode_fails,
                };
                self.enqueue_group_transfers(now, group, uncor);
            }
            DieCmd::Program { req, .. } => {
                self.requests[req].remaining -= 1;
                if self.requests[req].remaining == 0 {
                    self.complete_request(now, req);
                }
            }
            DieCmd::Bg { .. } => {}
        }
        self.die_try_start(now, die);
    }

    // ----- channels ----------------------------------------------------------

    fn enqueue_group_transfers(&mut self, now: SimTime, gid: usize, uncor: bool) {
        let ch = self.groups[gid].loc.channel(&self.cfg.geometry);
        let n = self.groups[gid].n_pages;
        let kind = if self.groups[gid].phase == GroupPhase::SentinelRead {
            XferKind::Sentinel { group: gid }
        } else {
            XferKind::ReadPage { group: gid }
        };
        self.groups[gid].pages_remaining = n;
        for _ in 0..n {
            self.channels[ch].queue.push_back(Transfer { kind, uncor });
        }
        self.chan_try_start(now, ch);
    }

    fn chan_try_start(&mut self, now: SimTime, ch: usize) {
        if self.channels[ch].busy {
            return;
        }
        // First startable transfer: read pages need ECC buffer space.
        let mut pick = None;
        for (i, t) in self.channels[ch].queue.iter().enumerate() {
            let needs_ecc = matches!(t.kind, XferKind::ReadPage { .. });
            if !needs_ecc || self.ecc[ch].pending < self.cfg.ecc_buffer_pages {
                pick = Some(i);
                break;
            }
        }
        match pick {
            Some(i) => {
                let t = self.channels[ch].queue.remove(i).expect("index valid");
                if matches!(t.kind, XferKind::ReadPage { .. }) {
                    self.ecc[ch].pending += 1;
                }
                if t.uncor {
                    self.uncor_page_transfers += 1;
                }
                let state = if t.uncor { ST_UNCOR } else { ST_COR };
                self.switch_chan(now, ch, state);
                if self.observing() {
                    let (name, parent, req) = match t.kind {
                        XferKind::ReadPage { group } => (
                            if t.uncor { "xfer_uncor" } else { "xfer" },
                            self.groups[group].span,
                            Some(self.groups[group].req as u64),
                        ),
                        XferKind::Sentinel { group } => (
                            "xfer_sentinel",
                            self.groups[group].span,
                            Some(self.groups[group].req as u64),
                        ),
                        XferKind::WritePage { job } => {
                            let req = self.write_jobs[job].req;
                            ("xfer_write", self.requests[req].span, Some(req as u64))
                        }
                    };
                    self.channels[ch].current_span = self.tracer.span_begin(
                        now,
                        name,
                        Some(parent),
                        Some(&format!("chan:{ch}")),
                        req,
                        Some(self.cfg.geometry.page_bytes as u64),
                    );
                    self.count(now, "pages.transferred", 1);
                    if t.uncor {
                        self.count(now, "pages.transferred_uncor", 1);
                    }
                }
                self.channels[ch].busy = true;
                self.channels[ch].current = Some(t);
                self.events
                    .schedule(now + self.cfg.t_dma(), Ev::ChanDone(ch));
            }
            None => {
                let state = if self.channels[ch].queue.is_empty() {
                    ST_IDLE
                } else {
                    ST_ECCWAIT
                };
                self.switch_chan(now, ch, state);
            }
        }
    }

    fn on_chan_done(&mut self, now: SimTime, ch: usize) {
        let t = self.channels[ch]
            .current
            .take()
            .expect("channel had no transfer");
        self.channels[ch].busy = false;
        if self.channels[ch].current_span != 0 {
            self.tracer.span_end(now, self.channels[ch].current_span);
            self.channels[ch].current_span = 0;
        }
        match t.kind {
            XferKind::ReadPage { group } => {
                self.ecc[ch].queue.push_back(group);
                self.ecc_try_start(now, ch);
            }
            XferKind::Sentinel { group } => {
                self.groups[group].pages_remaining -= 1;
                if self.groups[group].pages_remaining == 0 {
                    // Sentinel data delivered: launch the corrective read.
                    self.schedule_retry_sense(now, group);
                }
            }
            XferKind::WritePage { job } => {
                self.write_jobs[job].remaining_transfers -= 1;
                if self.write_jobs[job].remaining_transfers == 0 {
                    let die = self.write_jobs[job].die_linear;
                    let gc = self.write_jobs[job].gc_duration;
                    if !gc.is_zero() {
                        self.dies[die].queue.push_back(DieCmd::Bg {
                            kind: BgKind::Gc,
                            duration: gc,
                            suspensions: 0,
                        });
                        if let Some(h) = self.hybrid.as_mut() {
                            h.bg_ops += 1;
                        }
                        if self.observing() && self.hybrid.is_some() {
                            self.count(now, "bg.ops", 1);
                        }
                    }
                    self.dies[die].queue.push_back(DieCmd::Program {
                        req: self.write_jobs[job].req,
                        duration: self.write_jobs[job].program_duration,
                        suspensions: 0,
                    });
                    self.note_die_queue(now, die);
                    self.die_try_start(now, die);
                }
            }
        }
        self.chan_try_start(now, ch);
    }

    // ----- ECC engines ---------------------------------------------------------

    fn ecc_try_start(&mut self, now: SimTime, ch: usize) {
        if self.ecc[ch].busy {
            return;
        }
        if let Some(group) = self.ecc[ch].queue.pop_front() {
            let dur = self.groups[group].decode_duration;
            if self.observing() {
                self.ecc[ch].current_span = self.tracer.span_begin(
                    now,
                    "decode",
                    Some(self.groups[group].span),
                    Some(&format!("ecc:{ch}")),
                    Some(self.groups[group].req as u64),
                    None,
                );
            }
            let e = &mut self.ecc[ch];
            e.busy = true;
            e.current = Some(group);
            e.busy_since = now;
            self.events.schedule(now + dur, Ev::EccDone(ch));
        }
    }

    fn on_ecc_done(&mut self, now: SimTime, ch: usize) {
        let group = self.ecc[ch].current.take().expect("ECC had no page");
        self.ecc[ch].busy = false;
        self.ecc[ch].pending -= 1;
        self.ecc[ch].busy_total = self.ecc[ch].busy_total + now.since(self.ecc[ch].busy_since);
        if self.ecc[ch].current_span != 0 {
            self.tracer.span_end(now, self.ecc[ch].current_span);
            self.ecc[ch].current_span = 0;
        }
        self.groups[group].pages_remaining -= 1;
        if self.groups[group].pages_remaining == 0 {
            if self.groups[group].decode_fails {
                self.decode_failures += self.groups[group].n_pages as u64;
                if self.observing() {
                    self.count(now, "decode.failures", self.groups[group].n_pages as u64);
                }
                self.begin_retry(now, group);
            } else {
                self.group_done(now, group);
            }
        }
        self.ecc_try_start(now, ch);
        // A freed buffer slot may unblock a waiting transfer.
        self.chan_try_start(now, ch);
    }

    // ----- retry paths -----------------------------------------------------------

    fn begin_retry(&mut self, now: SimTime, gid: usize) {
        let kind = self.groups[gid].kind;
        if self.groups[gid].phase == GroupPhase::Initial && self.cfg.retry.sentinel_extra_read(kind)
        {
            // SENC: read and transfer the sentinel cells before the
            // corrective re-read.
            self.groups[gid].phase = GroupPhase::SentinelRead;
            if self.observing() {
                self.count(now, "retry.sentinel_reads", 1);
            }
            let die = self.groups[gid].loc.die_linear;
            let t_r = self.cfg.timing.t_r;
            self.enqueue_read_sense(
                now,
                die,
                DieCmd::Sense {
                    group: gid,
                    duration: t_r,
                },
            );
        } else {
            self.schedule_retry_sense(now, gid);
        }
    }

    fn schedule_retry_sense(&mut self, now: SimTime, gid: usize) {
        if self.observing() {
            self.count(now, "retry.rounds", 1);
        }
        let t = self.cfg.timing;
        let duration = match self.cfg.retry {
            // Swift-Read's retry command performs two senses in-die.
            RetryKind::SwiftRead | RetryKind::SwiftReadPlus => t.t_r * 2,
            // A RiF die re-runs its normal predicted read path.
            RetryKind::Rif => t.t_r + t.t_pred,
            _ => t.t_r,
        };
        let slot = self.groups[gid].slot;
        let attempt = self.groups[gid].attempt + 1;
        let rber_optimal = self.groups[gid].rber_optimal;
        // The corrective read senses at near-optimal references (oracle)
        // or at the references the ones-count re-calibration picks
        // (learned); after four attempts assume the vendor sequence
        // exhausted and force success (never observed — retry RBER sits
        // far below the capability).
        let (retry_rber, recal) = if self.learner.is_some() {
            let (r, o) = self.recalibrate_rber(gid);
            self.emit_recal_marker(now, gid);
            (r, Some(o))
        } else {
            (rber_optimal, None)
        };
        let fails = if self.forced_fail(slot).is_some() || attempt > 4 {
            false
        } else {
            self.cfg.ecc.sample_failure(retry_rber, &mut self.rng)
        };
        let (dur, fail_out) = if fails {
            (self.cfg.ecc.t_ecc_failure(), true)
        } else {
            (self.cfg.ecc.t_ecc(retry_rber), false)
        };
        let g = &mut self.groups[gid];
        g.phase = GroupPhase::Retry;
        g.attempt = attempt;
        g.cur_rber = retry_rber;
        if recal.is_some() {
            g.recal_offset = recal;
        }
        g.decode_fails = fail_out;
        g.decode_duration = dur;
        let die = g.loc.die_linear;
        self.enqueue_read_sense(
            now,
            die,
            DieCmd::Sense {
                group: gid,
                duration,
            },
        );
    }

    fn group_done(&mut self, now: SimTime, gid: usize) {
        if self.learner.is_some() {
            self.learner_update(now, gid);
        }
        let req = self.groups[gid].req;
        if self.groups[gid].span != 0 {
            self.tracer.span_end(now, self.groups[gid].span);
            self.groups[gid].span = 0;
        }
        self.requests[req].remaining -= 1;
        if self.requests[req].remaining == 0 {
            self.host_enqueue(now, HostJob::ReadCompletion { req });
        }
    }

    /// Folds a finished group's outcome into the threshold learner and
    /// scores the updated estimate against the oracle's optimal offset.
    fn learner_update(&mut self, now: SimTime, gid: usize) {
        let (block_id, op, block, outcome) = {
            let g = &self.groups[gid];
            let failed = g.attempt > 1 || g.rif_retried_in_die;
            let retries = g.attempt.saturating_sub(1) + u32::from(g.rif_retried_in_die);
            // Only schemes with syndrome-weight visibility (a predictor,
            // or SWR+'s tracking hardware) feed the weight signal.
            let syndrome_frac =
                if self.cfg.retry.has_predictor() || self.cfg.retry == RetryKind::SwiftReadPlus {
                    self.cfg.rp.expected_weight_fraction(g.first_rber)
                } else {
                    0.0
                };
            let outcome = ReadOutcome {
                failed,
                retries,
                syndrome_frac,
                recalibrated_offset: g.recal_offset,
            };
            (g.block_id, g.op, g.block, outcome)
        };
        let learner = self.learner.as_mut().expect("learner checked by caller");
        learner.observe(block_id, &outcome);
        let est = learner.offset(block_id);
        let truth = self.cfg.error_model.optimal_offset(block, op);
        let err = (est - truth).abs();
        self.learn_err_sum += err;
        self.learn_err_samples += 1;
        if self.observing() {
            self.count(now, "learner.updates", 1);
            if outcome.recalibrated_offset.is_some() {
                self.count(now, "learner.recalibrations", 1);
            }
            self.tracer.gauge(now, "learner.estimate_error", err);
        }
    }

    // ----- host link ----------------------------------------------------------------

    fn host_enqueue(&mut self, now: SimTime, job: HostJob) {
        self.host_queue.push_back(job);
        self.host_try_start(now);
    }

    fn host_try_start(&mut self, now: SimTime) {
        if self.host_busy {
            return;
        }
        if let Some(job) = self.host_queue.pop_front() {
            let (bytes, name, req) = match job {
                HostJob::ReadCompletion { req } => {
                    (self.requests[req].bytes as u64, "host_read", req)
                }
                HostJob::WriteIngress { req } => {
                    (self.requests[req].bytes as u64, "host_write_ingress", req)
                }
            };
            if self.observing() {
                self.host_span = self.tracer.span_begin(
                    now,
                    name,
                    Some(self.requests[req].span),
                    Some("host"),
                    Some(req as u64),
                    Some(bytes),
                );
            }
            self.host_busy = true;
            self.host_current = Some(job);
            self.events
                .schedule(now + self.cfg.host_transfer(bytes), Ev::HostDone);
        }
    }

    fn on_host_done(&mut self, now: SimTime) {
        let job = self.host_current.take().expect("host link had no job");
        self.host_busy = false;
        if self.host_span != 0 {
            self.tracer.span_end(now, self.host_span);
            self.host_span = 0;
        }
        match job {
            HostJob::ReadCompletion { req } => self.complete_request(now, req),
            HostJob::WriteIngress { req } => self.launch_write(now, req),
        }
        self.host_try_start(now);
    }

    fn launch_write(&mut self, now: SimTime, req: usize) {
        let slots = self.slots_of(req);
        self.requests[req].remaining = slots.len();
        let t = self.cfg.timing;
        for (slot, pages) in slots {
            self.retention.record_write(slot, now);
            let gc_of = |w: Option<crate::ftl::GcWork>| {
                w.map(|w| (t.t_r + t.t_prog) * w.relocated as u64 + t.t_bers)
                    .unwrap_or(SimDuration::ZERO)
            };
            let (loc, gc_duration) = match self.hybrid.take() {
                Some(mut h) => {
                    let out = h.ftl.write(slot);
                    // Cache-overflow evictions become immediate migrate
                    // work on their dies, ahead of this write's program.
                    let forced = out.evicted.len() as u64;
                    for w in out.evicted {
                        self.retention.record_write(w.slot, now);
                        let dur = t.t_r + t.t_prog + gc_of(w.gc);
                        self.dies[w.die_linear].queue.push_back(DieCmd::Bg {
                            kind: BgKind::Migrate,
                            duration: dur,
                            suspensions: 0,
                        });
                        self.note_die_queue(now, w.die_linear);
                        self.die_try_start(now, w.die_linear);
                    }
                    h.forced_evictions += forced;
                    h.migrated_slots += forced;
                    h.bg_ops += forced;
                    self.hybrid = Some(h);
                    if forced > 0 && self.observing() {
                        self.count(now, "bg.forced_evictions", forced);
                        self.count(now, "bg.migrated_slots", forced);
                        self.count(now, "bg.ops", forced);
                    }
                    (out.loc, gc_of(out.gc))
                }
                None => {
                    let (loc, gc) = self.ftl.write(slot);
                    (loc, gc_of(gc))
                }
            };
            let job = self.write_jobs.len();
            self.write_jobs.push(WriteJob {
                req,
                die_linear: loc.die_linear,
                remaining_transfers: pages,
                program_duration: t.t_prog,
                gc_duration,
            });
            let ch = loc.channel(&self.cfg.geometry);
            for _ in 0..pages {
                self.channels[ch].queue.push_back(Transfer {
                    kind: XferKind::WritePage { job },
                    uncor: false,
                });
            }
            self.chan_try_start(now, ch);
        }
    }

    // ----- background scheduler (hybrid mode) -----------------------------

    /// One background-scheduler tick: drains the SLC cache toward the low
    /// watermark (subject to the migration policy's destination-RBER
    /// gate), turns due refresh rewrites into die work, and re-arms
    /// itself while foreground requests remain.
    fn on_bg_tick(&mut self, now: SimTime) {
        let Some(mut h) = self.hybrid.take() else {
            return;
        };
        h.tick_armed = false;
        let t = self.cfg.timing;
        let gc_of = |w: &Option<crate::ftl::GcWork>| {
            w.as_ref()
                .map(|w| (t.t_r + t.t_prog) * w.relocated as u64 + t.t_bers)
                .unwrap_or(SimDuration::ZERO)
        };
        let drift_secs = now.since(SimTime::ZERO).as_ns() as f64 / 1e9;
        let drift_days = if self.cfg.drift.enabled() {
            self.cfg.drift.extra_days(drift_secs)
        } else {
            0.0
        };

        // --- SLC→QLC cache drain ---------------------------------------
        let mut migrated = 0u64;
        if h.ftl.cache_occupancy() > h.conf.bg.high_watermark {
            let allow = match h.conf.migration {
                MigrationPolicy::Fifo => true,
                MigrationPolicy::ReliabilityAware { dest_rber_margin } => {
                    // RARO gate: defer the background drain while data
                    // migrated now would exceed the RBER budget midway
                    // through its expected QLC residence (half the
                    // refresh interval). Forced evictions on the write
                    // path bypass this — the cache must not overflow.
                    let residence = if h.conf.bg.refresh_interval_days > 0.0 {
                        h.conf.bg.refresh_interval_days
                    } else {
                        self.cfg.refresh_days
                    } * 0.5;
                    let mut pe = self.cfg.pe_cycles;
                    if self.cfg.drift.enabled() {
                        pe = pe.saturating_add(self.cfg.drift.extra_pe(drift_secs));
                    }
                    let op = OperatingPoint {
                        pe_cycles: pe,
                        retention_days: residence,
                        reads: 0,
                    };
                    let dest_rber = h.conf.capacity_mode.model().rber_avg(op, 1.0);
                    dest_rber <= dest_rber_margin * self.cfg.ecc.correction_capability()
                }
            };
            if allow {
                for slot in h.ftl.migration_candidates(h.conf.bg.migrate_batch) {
                    if h.ftl.cache_occupancy() <= h.conf.bg.low_watermark {
                        break;
                    }
                    let Some(w) = h.ftl.migrate(slot) else {
                        continue;
                    };
                    // The copyback physically reprograms the data: its
                    // retention age restarts.
                    self.retention.record_write(slot, now);
                    self.dies[w.die_linear].queue.push_back(DieCmd::Bg {
                        kind: BgKind::Migrate,
                        duration: t.t_r + t.t_prog + gc_of(&w.gc),
                        suspensions: 0,
                    });
                    self.note_die_queue(now, w.die_linear);
                    self.die_try_start(now, w.die_linear);
                    migrated += 1;
                }
            } else if self.observing() {
                self.count(now, "bg.migration_gated_ticks", 1);
            }
        }

        // --- retention refresh ------------------------------------------
        let mut refreshed = 0u64;
        if h.conf.bg.refresh_interval_days > 0.0 && !h.ftl.touched().is_empty() {
            let policy = RefreshPolicy::new(h.conf.bg.refresh_interval_days);
            let n = h.ftl.touched().len();
            let batch = h.conf.bg.refresh_scan_batch.min(n);
            let window: Vec<(u64, f64)> = (0..batch)
                .map(|k| {
                    let slot = h.ftl.touched()[(h.refresh_cursor + k) % n];
                    (slot, self.retention.age_days(slot, now) + drift_days)
                })
                .collect();
            h.refresh_cursor = (h.refresh_cursor + batch) % n;
            for slot in policy.refresh_due(window) {
                // The rewrite resets the slot's age in place; the die
                // pays a read + program.
                self.retention.record_write(slot, now);
                let loc = h.ftl.locate_read(slot);
                self.dies[loc.die_linear].queue.push_back(DieCmd::Bg {
                    kind: BgKind::Refresh,
                    duration: t.t_r + t.t_prog,
                    suspensions: 0,
                });
                self.note_die_queue(now, loc.die_linear);
                self.die_try_start(now, loc.die_linear);
                refreshed += 1;
            }
        }

        h.migrated_slots += migrated;
        h.refreshed_slots += refreshed;
        h.bg_ops += migrated + refreshed;
        // Re-arm only while foreground work remains, so `run()`'s
        // advance-to-MAX still terminates. An idle tick (nothing moved)
        // fast-forwards to the next pending event rather than grinding
        // through dead time one period at a time: a submission landing
        // after a long virtual-time idle gap would otherwise make the
        // scheduler replay every elapsed period before serving it.
        if self.unfinished_requests() > 0 {
            h.tick_armed = true;
            let mut at = now + h.conf.bg.tick;
            if migrated + refreshed == 0 {
                if let Some(next) = self.events.peek_time() {
                    at = at.max(next);
                }
            }
            self.events.schedule(at, Ev::BgTick);
        }
        self.hybrid = Some(h);
        if self.observing() {
            if migrated > 0 {
                self.count(now, "bg.migrated_slots", migrated);
            }
            if refreshed > 0 {
                self.count(now, "bg.refreshed_slots", refreshed);
            }
            if migrated + refreshed > 0 {
                self.count(now, "bg.ops", migrated + refreshed);
            }
        }
    }

    fn complete_request(&mut self, now: SimTime, req: usize) {
        debug_assert!(!self.requests[req].done, "request {req} completed twice");
        self.requests[req].done = true;
        let (op, bytes, span, arrival) = {
            let r = &self.requests[req];
            (r.op, r.bytes as u64, r.span, r.arrival)
        };
        self.completed_requests += 1;
        self.completed_bytes += bytes;
        if op == IoOp::Read {
            self.read_bytes += bytes;
            self.read_latency.record(now.since(arrival));
        }
        if self.observing() {
            if span != 0 {
                self.tracer.span_end(now, span);
                self.requests[req].span = 0;
            }
            self.count(now, "requests.completed", 1);
            self.count(now, "bytes.completed", bytes);
            if op == IoOp::Read {
                if let Some(m) = &mut self.metrics {
                    m.observe("latency.read", now.since(arrival));
                }
            }
        }
        self.last_completion = now;
        self.completions.push(Completion {
            id: req as u64,
            op,
            offset: self.requests[req].offset,
            bytes: self.requests[req].bytes,
            arrival,
            finished: now,
        });
        self.outstanding -= 1;
        if let Some(next) = self.backlog.pop_front() {
            self.admit(now, next);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_workloads::{IoRequest, SynthConfig, WorkloadProfile};

    fn read_req(us: u64, offset: u64, bytes: u32) -> IoRequest {
        IoRequest {
            arrival: SimTime::from_us(us),
            op: IoOp::Read,
            offset,
            bytes,
        }
    }

    fn write_req(us: u64, offset: u64, bytes: u32) -> IoRequest {
        IoRequest {
            arrival: SimTime::from_us(us),
            op: IoOp::Write,
            offset,
            bytes,
        }
    }

    #[test]
    fn single_clean_read_latency_breakdown() {
        // One 64-KiB read, no failures: tR + 4·tDMA + tECC + host transfer.
        let mut cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        cfg.forced_failure_slots = Some(vec![]); // nothing fails
        let report = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
        assert_eq!(report.completed_requests, 1);
        let lat = report.read_latency.max().as_us();
        // 40 (sense) + 4x13 (DMA) + ~1-3 (last ECC) + 8.2 (host) ≈ 102.
        assert!((95.0..115.0).contains(&lat), "latency {lat}");
        assert_eq!(report.decode_failures, 0);
        assert_eq!(report.page_senses, 4);
    }

    #[test]
    fn forced_failure_adds_one_retry_round() {
        let mut cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        cfg.forced_failure_slots = Some(vec![0]);
        let report = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
        assert_eq!(report.decode_failures, 4);
        // Failed round: 40 + 52 + 4 decodes of 20 = wasted; then retry.
        assert_eq!(report.uncor_page_transfers, 4);
        assert_eq!(report.page_senses, 8);
        let lat = report.read_latency.max().as_us();
        assert!(lat > 200.0, "latency {lat} too small for a retry round");
    }

    #[test]
    fn rif_retries_in_die_without_channel_waste() {
        let mut cfg = SsdConfig::small(RetryKind::Rif, 0);
        cfg.forced_failure_slots = Some(vec![0]);
        let report = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
        assert_eq!(report.in_die_retries, 1);
        assert_eq!(report.decode_failures, 0);
        assert_eq!(report.uncor_page_transfers, 0);
        // 82.5 (sense+pred+resense) + 52 + ecc + host ≈ 145.
        let lat = report.read_latency.max().as_us();
        assert!((135.0..160.0).contains(&lat), "latency {lat}");
    }

    #[test]
    fn sentinel_pays_extra_transfer_for_csb_pages() {
        // Cold mapping is assigned in touch order: the second slot read on
        // a die lands on page 1 — a CSB page, which needs the sentinel
        // extra read. Touch slot 8 (page 0) then fail slot 40 (page 1),
        // both on die 8 of the 32-die array.
        let mut cfg = SsdConfig::small(RetryKind::Sentinel, 0);
        cfg.forced_failure_slots = Some(vec![40]);
        let sb = 64 * 1024;
        let trace = Trace::new(vec![
            read_req(0, 8 * sb, 65536),
            read_req(1, 40 * sb, 65536),
        ]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.decode_failures, 4);
        // 4 failed-page transfers + 4 sentinel transfers are overhead.
        assert_eq!(report.uncor_page_transfers, 8);
        // slot 8: 4 senses; slot 40: initial + sentinel + retry = 12.
        assert_eq!(report.page_senses, 16);
    }

    #[test]
    fn zero_scheme_never_fails_even_when_forced() {
        let mut cfg = SsdConfig::small(RetryKind::Zero, 2000);
        cfg.forced_failure_slots = Some(vec![0]);
        let report = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
        assert_eq!(report.decode_failures, 0);
        assert_eq!(report.page_senses, 4);
    }

    #[test]
    fn writes_complete_and_reset_retention() {
        let cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        let trace = Trace::new(vec![
            write_req(0, 0, 65536),
            read_req(1000, 0, 65536), // re-read the freshly written slot
        ]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.completed_requests, 2);
        // A just-written page never needs a retry.
        assert_eq!(report.decode_failures, 0);
        assert_eq!(report.completed_bytes, 2 * 65536);
    }

    #[test]
    fn channel_usage_fractions_sum_to_one() {
        let cfg = SsdConfig::small(RetryKind::SwiftRead, 1000);
        let trace = SynthConfig {
            read_ratio: 0.8,
            cold_read_ratio: 0.8,
            hot_region_bytes: 64 << 20,
            cold_region_bytes: 256 << 20,
            ..SynthConfig::default()
        }
        .generate(300, 3);
        let report = Simulator::new(cfg).run(&trace);
        for u in &report.per_channel_usage {
            let sum = u.idle + u.cor + u.uncor + u.eccwait;
            assert!((sum - 1.0).abs() < 1e-9, "usage sums to {sum}");
        }
        assert_eq!(report.completed_requests, 300);
    }

    #[test]
    fn rif_beats_senc_under_heavy_retries() {
        // At 2K P/E with cold-heavy reads, RiF must deliver clearly more
        // bandwidth than Sentinel — the core claim of the paper. The trace
        // over-drives the device (2 µs interarrival ≈ 32 GB/s offered) so
        // the measured bandwidth is the SSD's, not the workload's.
        let mut wl = WorkloadProfile::by_name("Ali124").unwrap().config();
        wl.mean_interarrival_ns = 2_000.0;
        let trace = wl.generate(800, 12);
        let run = |retry| {
            let mut cfg = SsdConfig::small(retry, 2000);
            cfg.seed = 99;
            Simulator::new(cfg).run(&trace)
        };
        let senc = run(RetryKind::Sentinel);
        let rif = run(RetryKind::Rif);
        let zero = run(RetryKind::Zero);
        assert!(
            rif.io_bandwidth_mbps() > senc.io_bandwidth_mbps() * 1.1,
            "RiF {} vs SENC {}",
            rif.io_bandwidth_mbps(),
            senc.io_bandwidth_mbps()
        );
        assert!(rif.io_bandwidth_mbps() <= zero.io_bandwidth_mbps() * 1.02);
        // And the channel waste ordering matches Fig. 18.
        assert!(rif.channel_usage().wasted() < senc.channel_usage().wasted());
    }

    #[test]
    fn queue_depth_backpressure_holds() {
        let mut cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        cfg.queue_depth = 1;
        cfg.forced_failure_slots = Some(vec![]);
        // Two reads arriving together: the second must wait for the first.
        let trace = Trace::new(vec![read_req(0, 0, 65536), read_req(0, 65536, 65536)]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.completed_requests, 2);
        let p100 = report.read_latency.max().as_us();
        let p1 = report.read_latency.min().as_us();
        assert!(p100 > p1 * 1.5, "no queueing visible: {p1} vs {p100}");
    }

    #[test]
    fn swift_read_retry_occupies_die_for_two_senses() {
        // SWR's corrective command is two in-die senses: the retried
        // read's latency must exceed SSDone's by ~tR.
        let lat = |retry| {
            let mut cfg = SsdConfig::small(retry, 0);
            cfg.forced_failure_slots = Some(vec![0]);
            let r = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
            r.read_latency.max().as_us()
        };
        let one = lat(RetryKind::IdealOne);
        let swr = lat(RetryKind::SwiftRead);
        let diff = swr - one;
        assert!((30.0..55.0).contains(&diff), "SWR - SSDone = {diff} µs");
    }

    #[test]
    fn rpssd_terminates_hopeless_decodes_early() {
        // With a forced failure, RPSSD's ECC occupancy for the failed
        // pages is tPRED (2.5 µs) instead of 20 µs, so its end-to-end
        // latency beats SSDone's despite the same transfer waste.
        let lat = |retry| {
            let mut cfg = SsdConfig::small(retry, 0);
            cfg.forced_failure_slots = Some(vec![0]);
            let r = Simulator::new(cfg).run(&Trace::new(vec![read_req(0, 0, 65536)]));
            (r.read_latency.max().as_us(), r.uncor_page_transfers)
        };
        let (one, one_uncor) = lat(RetryKind::IdealOne);
        let (rpssd, rpssd_uncor) = lat(RetryKind::RpSsd);
        assert!(rpssd < one, "RPSSD {rpssd} vs SSDone {one}");
        assert_eq!(
            one_uncor, rpssd_uncor,
            "RPSSD must still ship the failed pages"
        );
    }

    #[test]
    fn host_link_serializes_write_ingress() {
        // Two simultaneous 1-MiB writes: ingress at 8 GB/s costs 131 µs
        // each and is serialized, so the later write's data reaches the
        // dies measurably later.
        let mut cfg = SsdConfig::small(RetryKind::Zero, 0);
        cfg.queue_depth = 8;
        let trace = Trace::new(vec![
            write_req(0, 0, 1 << 20),
            write_req(0, 1 << 20, 1 << 20),
        ]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.completed_requests, 2);
        // Makespan must cover at least both ingress transfers plus one
        // program: 2 x 131 + 400 > 650 µs.
        assert!(
            report.makespan.as_us() > 650.0,
            "makespan {}",
            report.makespan.as_us()
        );
    }

    #[test]
    fn gc_work_is_charged_to_dies() {
        // A tiny write region forces GC; total simulated time must grow
        // well beyond the no-GC bound because erases (3.5 ms) serialize
        // behind programs on the victim dies.
        let mut cfg = SsdConfig::small(RetryKind::Zero, 0);
        cfg.geometry = rif_flash::FlashGeometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 4,
            blocks_per_plane: 8,
            pages_per_block: 4,
            page_bytes: 16 * 1024,
        };
        cfg.queue_depth = 2;
        // Overwrite a 4-slot working set far beyond the 16-slot write
        // region capacity of the single die.
        let reqs: Vec<IoRequest> = (0..120)
            .map(|i| write_req(i, (i % 4) * 65536, 65536))
            .collect();
        let report = Simulator::new(cfg).run(&Trace::new(reqs));
        assert_eq!(report.completed_requests, 120);
        assert!(report.gc_relocations > 0 || report.makespan.as_us() > 120.0 * 400.0);
    }

    #[test]
    fn sub_page_reads_sense_single_pages() {
        let mut cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        cfg.forced_failure_slots = Some(vec![]);
        let trace = Trace::new(vec![read_req(0, 0, 16 * 1024)]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.page_senses, 1);
        assert_eq!(report.completed_bytes, 16 * 1024);
    }

    #[test]
    fn requests_spanning_slots_fan_out_to_multiple_dies() {
        let mut cfg = SsdConfig::small(RetryKind::Zero, 0);
        cfg.forced_failure_slots = Some(vec![]);
        // 256 KiB = 4 slots = 16 pages on 4 different dies.
        let trace = Trace::new(vec![read_req(0, 0, 256 * 1024)]);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.page_senses, 16);
        // Four dies sense in parallel; four channels transfer in
        // parallel: far faster than a serial 16-page read.
        let lat = report.read_latency.max().as_us();
        assert!(lat < 40.0 + 4.0 * 13.0 + 40.0, "latency {lat}");
    }

    #[test]
    fn suspend_resume_cuts_read_latency_behind_programs() {
        // One long program monopolizes a die; a read arrives right after.
        // Without suspend the read waits out the 400-µs program; with it,
        // the read preempts and the program resumes afterwards.
        let build = |suspend: bool| {
            let mut cfg = SsdConfig::small(RetryKind::Zero, 0);
            cfg.read_suspend = suspend;
            cfg.queue_depth = 4;
            cfg
        };
        // Write slot 0 (die 0), then read slot 0 shortly after the program
        // starts (write path: ingress ~8 µs + 4 transfers ~52 µs).
        let trace = Trace::new(vec![write_req(0, 0, 65536), read_req(100, 0, 65536)]);
        let plain = Simulator::new(build(false)).run(&trace);
        let susp = Simulator::new(build(true)).run(&trace);
        assert_eq!(plain.completed_requests, 2);
        assert_eq!(susp.completed_requests, 2);
        let lat_plain = plain.read_latency.max().as_us();
        let lat_susp = susp.read_latency.max().as_us();
        assert!(
            lat_susp + 150.0 < lat_plain,
            "suspend: {lat_susp} vs plain: {lat_plain}"
        );
        // The write still completes: the suspended program resumed.
        assert_eq!(susp.completed_bytes, 2 * 65536);
    }

    #[test]
    fn suspension_is_bounded_per_command() {
        // A stream of reads cannot starve a program forever: after two
        // suspensions the program runs to completion.
        let mut cfg = SsdConfig::small(RetryKind::Zero, 0);
        cfg.read_suspend = true;
        cfg.queue_depth = 16;
        let mut reqs = vec![write_req(0, 0, 65536)];
        for i in 0..20 {
            reqs.push(read_req(100 + i * 30, 0, 65536));
        }
        let report = Simulator::new(cfg).run(&Trace::new(reqs));
        assert_eq!(report.completed_requests, 21);
        // The write must finish within a bounded window: program 400 µs +
        // 2 suspensions x (sense 40 + overhead 20) + queued reads ahead.
        assert!(
            report.makespan.as_us() < 5_000.0,
            "makespan {}",
            report.makespan.as_us()
        );
    }

    #[test]
    fn suspend_disabled_matches_baseline_results() {
        // With the feature off (the paper's configuration), results are
        // bit-identical to the pre-feature behaviour.
        let trace = WorkloadProfile::by_name("Ali2").unwrap().generate(200, 3);
        let run = |suspend| {
            let mut cfg = SsdConfig::small(RetryKind::Rif, 1000);
            cfg.read_suspend = suspend;
            Simulator::new(cfg).run(&trace)
        };
        let a = run(false);
        let b = run(false);
        assert_eq!(a.makespan, b.makespan);
        // And enabling it on a write-heavy trace changes read latency.
        let c = run(true);
        assert!(c.completed_requests == a.completed_requests);
    }

    #[test]
    fn stepper_drains_completions_in_order() {
        let mut cfg = SsdConfig::small(RetryKind::IdealOne, 0);
        cfg.forced_failure_slots = Some(vec![]);
        let mut sim = Simulator::new(cfg);
        let a = sim.submit(read_req(0, 0, 65536));
        let b = sim.submit(read_req(10, 65536, 65536));
        assert_eq!((a, b), (0, 1));
        // Nothing before the first sense finishes.
        sim.advance_until(SimTime::from_us(30));
        assert!(sim.drain_completions().is_empty());
        assert_eq!(sim.unfinished_requests(), 2);
        sim.advance_until(SimTime::MAX);
        let done = sim.drain_completions();
        assert_eq!(done.len(), 2);
        assert_eq!(done[0].id, 0);
        assert_eq!(done[1].id, 1);
        assert!(done[0].finished <= done[1].finished);
        assert!(done[0].latency() > SimDuration::from_us(50));
        assert_eq!(sim.unfinished_requests(), 0);
        // A second drain is empty; finish() still reports both requests.
        assert!(sim.drain_completions().is_empty());
        let report = sim.finish();
        assert_eq!(report.completed_requests, 2);
    }

    #[test]
    fn stepper_accepts_live_injection_mid_run() {
        // Submit while the event loop has already advanced: the late
        // request's stale arrival is clamped to the clock instead of
        // panicking the event queue.
        let mut cfg = SsdConfig::small(RetryKind::Rif, 1000);
        cfg.forced_failure_slots = Some(vec![]);
        let mut sim = Simulator::new(cfg);
        sim.submit(read_req(0, 0, 65536));
        sim.advance_until(SimTime::from_us(60)); // sense done, transfers going
        let clock = sim.now();
        assert!(clock > SimTime::ZERO);
        let id = sim.submit(read_req(0, 65536, 65536)); // arrival 0 is in the past
        sim.advance_until(SimTime::MAX);
        let done = sim.drain_completions();
        assert_eq!(done.len(), 2);
        let late = done.iter().find(|c| c.id == id).unwrap();
        assert_eq!(late.arrival, clock, "stale arrival clamps to the clock");
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.next_event_time(), None);
    }

    #[test]
    fn stepper_advance_is_chunking_invariant() {
        // Advancing in many small windows handles exactly the same events
        // as one big advance: reports are byte-identical.
        let trace = WorkloadProfile::by_name("Ali124").unwrap().generate(150, 9);
        let batch = Simulator::new(SsdConfig::small(RetryKind::Rif, 1000)).run(&trace);
        let mut sim = Simulator::new(SsdConfig::small(RetryKind::Rif, 1000));
        for r in &trace {
            sim.submit(*r);
        }
        let mut t = SimTime::ZERO;
        while sim.pending_events() > 0 {
            t = t + SimDuration::from_us(100);
            sim.advance_until(t);
        }
        let stepped = sim.finish();
        assert_eq!(batch.to_json(), stepped.to_json());
    }

    #[test]
    fn deterministic_given_seed() {
        let trace = WorkloadProfile::by_name("Sys0").unwrap().generate(200, 5);
        let run = || {
            let cfg = SsdConfig::small(RetryKind::SwiftReadPlus, 1000);
            Simulator::new(cfg).run(&trace)
        };
        let a = run();
        let b = run();
        assert_eq!(a.completed_bytes, b.completed_bytes);
        assert_eq!(a.makespan, b.makespan);
        assert_eq!(a.decode_failures, b.decode_failures);
    }

    fn learned_cfg(retry: RetryKind, pe: u32) -> SsdConfig {
        let mut cfg = SsdConfig::small(retry, pe);
        cfg.learning =
            crate::config::LearningMode::Learned(rif_flash::learn::LearnerConfig::default_paper());
        cfg
    }

    fn aged_trace(n: usize, seed: u64) -> Trace {
        SynthConfig {
            read_ratio: 0.9,
            cold_read_ratio: 0.7,
            ..SynthConfig::default()
        }
        .generate(n, seed)
    }

    #[test]
    fn learned_mode_populates_summary_oracle_does_not() {
        let trace = aged_trace(150, 9);
        let oracle = Simulator::new(SsdConfig::small(RetryKind::Rif, 2000)).run(&trace);
        assert!(oracle.learner.is_none());
        assert!(!oracle.to_json().contains("\"learner\""));
        let learned = Simulator::new(learned_cfg(RetryKind::Rif, 2000)).run(&trace);
        let l = learned.learner.expect("learned run must summarize");
        assert!(l.updates > 0, "no learner updates");
        assert!(l.blocks_tracked > 0);
        assert!(l.mean_abs_error.is_finite() && l.mean_abs_error >= 0.0);
        assert!(learned.to_json().contains("\"learner\""));
    }

    #[test]
    fn learned_runs_are_deterministic() {
        let trace = aged_trace(120, 11);
        let run = || {
            Simulator::new(learned_cfg(RetryKind::SwiftReadPlus, 2000))
                .with_metrics()
                .run(&trace)
                .to_json()
        };
        assert_eq!(run(), run(), "learned mode must stay reproducible");
    }

    #[test]
    fn rif_learned_recalibrations_feed_the_learner() {
        // At heavy wear the RP fires often, so the RVS re-calibration
        // path must dominate the learner's observations.
        let trace = aged_trace(200, 13);
        let report = Simulator::new(learned_cfg(RetryKind::Rif, 2000)).run(&trace);
        let l = report.learner.unwrap();
        assert!(
            l.recalibrations > 0,
            "in-die retries produced no re-calibration observations"
        );
        assert!(l.recalibrations <= l.updates);
    }

    #[test]
    fn drift_clock_ages_groups_mid_run() {
        // An extreme drift rate must change learned-mode behaviour versus
        // the same run without drift; with the clock disabled the two
        // configurations are identical.
        let trace = aged_trace(150, 17);
        let still = Simulator::new(learned_cfg(RetryKind::SwiftRead, 1000)).run(&trace);
        let mut cfg = learned_cfg(RetryKind::SwiftRead, 1000);
        cfg.drift = rif_flash::learn::DriftClock {
            days_per_sec: 2000.0,
            pe_per_sec: 100_000.0,
        };
        let drifted = Simulator::new(cfg).run(&trace);
        assert_ne!(
            still.to_json(),
            drifted.to_json(),
            "drift clock had no observable effect"
        );
    }

    fn hybrid_cfg(retry: RetryKind, pe: u32) -> SsdConfig {
        let mut cfg = SsdConfig::small(retry, pe);
        cfg.hybrid = Some(crate::hybrid::HybridConfig::slc_qlc());
        cfg
    }

    fn mixed_trace(n: usize, seed: u64) -> Trace {
        SynthConfig {
            read_ratio: 0.5,
            cold_read_ratio: 0.5,
            hot_region_bytes: 4 << 20,
            cold_region_bytes: 64 << 20,
            ..SynthConfig::default()
        }
        .generate(n, seed)
    }

    #[test]
    fn hybrid_run_completes_and_summarizes() {
        let trace = mixed_trace(300, 21);
        let plain = Simulator::new(SsdConfig::small(RetryKind::Rif, 1000)).run(&trace);
        assert!(plain.hybrid.is_none());
        assert!(!plain.to_json().contains("\"hybrid\""));
        let report = Simulator::new(hybrid_cfg(RetryKind::Rif, 1000)).run(&trace);
        assert_eq!(report.completed_requests, 300);
        let h = report.hybrid.expect("hybrid run must summarize");
        assert!(report.to_json().contains("\"hybrid\""));
        assert!((0.0..=1.0).contains(&h.cache_occupancy));
        assert!(h.bg_ops >= h.migrated_slots + h.refreshed_slots);
    }

    #[test]
    fn hybrid_cache_drains_under_write_pressure() {
        // A write-heavy trace pushes the cache past the high watermark:
        // the scheduler must migrate, and occupancy must end at or below
        // the point where draining stops making progress.
        let mut cfg = hybrid_cfg(RetryKind::Rif, 1000);
        // FIFO drain: no reliability gate, so migration always runs, and
        // near-zero watermarks so this short trace reaches them.
        let h = cfg.hybrid.as_mut().unwrap();
        h.migration = crate::hybrid::MigrationPolicy::Fifo;
        h.bg.high_watermark = 0.001;
        h.bg.low_watermark = 0.0;
        let trace = SynthConfig {
            read_ratio: 0.1,
            cold_read_ratio: 0.2,
            hot_region_bytes: 16 << 20,
            cold_region_bytes: 64 << 20,
            ..SynthConfig::default()
        }
        .generate(500, 23);
        let report = Simulator::new(cfg).run(&trace);
        assert_eq!(report.completed_requests, 500);
        let h = report.hybrid.unwrap();
        assert!(h.migrated_slots > 0, "cache never drained: {h:?}");
    }

    #[test]
    fn hybrid_qlc_reads_retry_more_than_tlc() {
        // Same trace, same seed: pure-QLC capacity reads see amplified
        // RBER, so decode failures + in-die retries must exceed TLC's.
        let trace = SynthConfig {
            read_ratio: 0.95,
            cold_read_ratio: 0.8,
            ..SynthConfig::default()
        }
        .generate(400, 25);
        let tlc = Simulator::new(SsdConfig::small(RetryKind::IdealOne, 1000)).run(&trace);
        let mut qcfg = SsdConfig::small(RetryKind::IdealOne, 1000);
        qcfg.hybrid = Some(crate::hybrid::HybridConfig::qlc());
        let qlc = Simulator::new(qcfg).run(&trace);
        assert!(
            qlc.decode_failures > tlc.decode_failures,
            "QLC {} vs TLC {} decode failures",
            qlc.decode_failures,
            tlc.decode_failures
        );
        assert!(qlc.read_latency.mean() >= tlc.read_latency.mean());
    }

    #[test]
    fn hybrid_refresh_fires_under_drift() {
        let mut cfg = hybrid_cfg(RetryKind::Rif, 1000);
        // Extreme drift: simulated microseconds become retention days, so
        // written slots age past the refresh interval mid-run.
        cfg.drift = rif_flash::learn::DriftClock {
            days_per_sec: 5e6,
            pe_per_sec: 0.0,
        };
        let trace = mixed_trace(400, 27);
        let report = Simulator::new(cfg).run(&trace);
        let h = report.hybrid.unwrap();
        assert!(
            h.refreshed_slots > 0,
            "drift never triggered refresh: {h:?}"
        );
    }

    #[test]
    fn hybrid_runs_are_deterministic() {
        let trace = mixed_trace(250, 29);
        let run = || {
            let mut cfg = hybrid_cfg(RetryKind::Rif, 1500);
            cfg.drift = rif_flash::learn::DriftClock {
                days_per_sec: 1e6,
                pe_per_sec: 0.0,
            };
            Simulator::new(cfg).with_metrics().run(&trace).to_json()
        };
        assert_eq!(run(), run(), "hybrid mode must stay reproducible");
    }

    #[test]
    fn hybrid_stepper_terminates_without_foreground_work() {
        // The BgTick must disarm once the last request completes, or
        // advance_until(MAX) would spin forever.
        let mut sim = Simulator::new(hybrid_cfg(RetryKind::Rif, 1000));
        sim.submit(write_req(0, 0, 65536));
        sim.submit(read_req(10, 0, 65536));
        sim.advance_until(SimTime::MAX);
        assert_eq!(sim.pending_events(), 0, "BgTick failed to disarm");
        assert_eq!(sim.unfinished_requests(), 0);
        assert!(sim.bg_summary().is_some());
        // Resubmitting re-arms the scheduler.
        sim.submit(write_req(0, 65536, 65536));
        sim.advance_until(SimTime::MAX);
        assert_eq!(sim.pending_events(), 0);
        assert_eq!(sim.unfinished_requests(), 0);
    }

    #[test]
    fn oracle_mode_draws_no_learner_randomness() {
        // The learned path must not perturb the oracle path's RNG stream:
        // an oracle run constructed after the learned types existed still
        // matches a fresh oracle run bit-for-bit (the full cross-version
        // pin lives in tests/golden/oracle_seed_reports.json).
        let trace = aged_trace(100, 19);
        let a = Simulator::new(SsdConfig::small(RetryKind::Rif, 2000)).run(&trace);
        let b = Simulator::new(SsdConfig::small(RetryKind::Rif, 2000)).run(&trace);
        assert_eq!(a.to_json(), b.to_json());
    }
}
