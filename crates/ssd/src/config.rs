//! Simulated-SSD configuration (Table I).

use rif_events::SimDuration;
use rif_flash::chip::FlashTiming;
use rif_flash::geometry::FlashGeometry;
use rif_flash::learn::{DriftClock, LearnerConfig};
use rif_flash::rber::ErrorModel;
use rif_ldpc::EccModel;
use rif_odear::RpBehavior;

use crate::hybrid::HybridConfig;
use crate::retry::RetryKind;

/// How the simulated controller obtains per-block read thresholds.
#[derive(Debug, Clone)]
pub enum LearningMode {
    /// Device-characterization tables (§VI-A): every read starts from the
    /// exact per-block RBER the extended MQSim-E would look up. This is
    /// the pre-learning behaviour and stays byte-identical to it.
    Oracle,
    /// Online per-block threshold learning: initial reads use the
    /// [`rif_flash::ThresholdLearner`]'s V_REF estimates and every decode
    /// outcome (plus ones-count re-calibrations on retries) feeds back
    /// into them. The oracle tables remain available for A/B comparison
    /// as the ground truth the learner is scored against.
    Learned(LearnerConfig),
}

impl LearningMode {
    /// Whether the learned path is active.
    pub fn is_learned(&self) -> bool {
        matches!(self, LearningMode::Learned(_))
    }

    /// The learner configuration, when learning is enabled.
    pub fn learner_config(&self) -> Option<&LearnerConfig> {
        match self {
            LearningMode::Oracle => None,
            LearningMode::Learned(cfg) => Some(cfg),
        }
    }
}

/// Full configuration of a simulated SSD run.
///
/// # Example
///
/// ```
/// use rif_ssd::{SsdConfig, RetryKind};
///
/// let cfg = SsdConfig::paper(RetryKind::Rif, 1000);
/// assert_eq!(cfg.geometry.channels, 8);
/// assert_eq!(cfg.pe_cycles, 1000);
/// assert_eq!(cfg.host_bw_bytes_per_sec, 8_000_000_000);
/// ```
#[derive(Debug, Clone)]
pub struct SsdConfig {
    /// Flash array geometry (Table I).
    pub geometry: FlashGeometry,
    /// Flash and channel timing (Table I).
    pub timing: FlashTiming,
    /// Host interface bandwidth (PCIe 4.0 ×4: 8 GB/s).
    pub host_bw_bytes_per_sec: u64,
    /// The read-retry scheme under test.
    pub retry: RetryKind,
    /// P/E-cycle count of every block (the experiment's wear stage).
    pub pe_cycles: u32,
    /// Behavioural ECC model (failure probability, tECC).
    pub ecc: EccModel,
    /// NAND error model (RBER vs stress).
    pub error_model: ErrorModel,
    /// RP behaviour model (for `RPSSD` / `RiFSSD`).
    pub rp: RpBehavior,
    /// Channel-level ECC engine input buffer, in 16-KiB pages. When full,
    /// the channel cannot start further read transfers (the ECCWAIT
    /// mechanism of §III-B3).
    pub ecc_buffer_pages: usize,
    /// Maximum host requests in flight (NVMe queue depth).
    pub queue_depth: usize,
    /// Refresh horizon: never-written data carries a uniform random age in
    /// `[0, refresh_days]` (§IV-B footnote 3: blocks refreshed monthly).
    pub refresh_days: f64,
    /// RNG seed for all stochastic draws of the run.
    pub seed: u64,
    /// Threshold source: oracle characterization tables (default, the
    /// paper's configuration) or online per-block learning.
    pub learning: LearningMode,
    /// Lifetime drift clock: advances retention age and P/E wear with
    /// simulated time during long runs. Disabled by default, in which
    /// case it contributes exactly nothing to any operating point.
    pub drift: DriftClock,
    /// Program/erase suspend-resume: when enabled, an arriving read
    /// preempts an in-flight program or erase on its die (the remainder
    /// resumes afterwards plus [`SsdConfig::suspend_overhead`]). An
    /// enterprise-SSD latency feature of MQSim-class simulators; off by
    /// default to match the paper's configuration.
    pub read_suspend: bool,
    /// Extra die time to resume a suspended program/erase.
    pub suspend_overhead: SimDuration,
    /// Test hook: when set, decode failures are not sampled — the first
    /// decode of slot `s` fails iff `s` is in this list, and retried reads
    /// always succeed. Used by the Fig. 7/8 timeline and unit tests.
    pub forced_failure_slots: Option<Vec<u64>>,
    /// Hybrid SLC/QLC subsystem (DESIGN §14): cell-mode regions, SLC→QLC
    /// migration, and background GC/refresh traffic. `None` (the default)
    /// keeps the pure-TLC device, byte-identical to earlier versions.
    pub hybrid: Option<HybridConfig>,
}

impl SsdConfig {
    /// The Table I configuration for the given scheme and wear stage.
    pub fn paper(retry: RetryKind, pe_cycles: u32) -> Self {
        SsdConfig {
            geometry: FlashGeometry::paper(),
            timing: FlashTiming::paper(),
            host_bw_bytes_per_sec: 8_000_000_000,
            retry,
            pe_cycles,
            ecc: EccModel::paper_default(),
            error_model: ErrorModel::calibrated(),
            rp: RpBehavior::paper_default(),
            ecc_buffer_pages: 2,
            queue_depth: 64,
            refresh_days: 30.0,
            seed: 0x5EED,
            learning: LearningMode::Oracle,
            drift: DriftClock::disabled(),
            read_suspend: false,
            suspend_overhead: SimDuration::from_us(20),
            forced_failure_slots: None,
            hybrid: None,
        }
    }

    /// A scaled-down configuration for fast unit tests (same topology,
    /// fewer blocks).
    pub fn small(retry: RetryKind, pe_cycles: u32) -> Self {
        SsdConfig {
            geometry: FlashGeometry::small(),
            ..Self::paper(retry, pe_cycles)
        }
    }

    /// Per-page DMA time on a flash channel.
    pub fn t_dma(&self) -> SimDuration {
        self.timing.t_dma_page
    }

    /// Host-link transfer time for `bytes`.
    pub fn host_transfer(&self, bytes: u64) -> SimDuration {
        SimDuration::from_transfer(bytes, self.host_bw_bytes_per_sec)
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics when the configuration cannot drive a simulation (zero
    /// queue depth, zero ECC buffer, or a host link slower than a single
    /// channel would make the channel model meaningless).
    pub fn validate(&self) {
        assert!(self.queue_depth > 0, "queue depth must be positive");
        assert!(
            self.ecc_buffer_pages > 0,
            "ECC buffer must hold at least one page"
        );
        assert!(self.refresh_days > 0.0, "refresh horizon must be positive");
        assert!(
            self.host_bw_bytes_per_sec > 0,
            "host bandwidth must be positive"
        );
        self.drift.validate();
        if let Some(learn) = self.learning.learner_config() {
            learn.validate();
        }
        if let Some(h) = &self.hybrid {
            h.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table1() {
        let c = SsdConfig::paper(RetryKind::Zero, 0);
        assert_eq!(c.geometry.dies_per_channel, 4);
        assert_eq!(c.geometry.planes_per_die, 4);
        assert_eq!(c.geometry.blocks_per_plane, 1888);
        assert_eq!(c.geometry.pages_per_block, 576);
        assert_eq!(c.timing.t_r.as_us(), 40.0);
        assert_eq!(c.t_dma().as_us(), 13.0);
        assert!((c.ecc.correction_capability() - 0.0085).abs() < 1e-9);
        c.validate();
    }

    #[test]
    fn host_transfer_scales() {
        let c = SsdConfig::paper(RetryKind::Zero, 0);
        let t64k = c.host_transfer(64 * 1024);
        // 64 KiB at 8 GB/s = 8.192 µs.
        assert!((t64k.as_us() - 8.192).abs() < 0.01, "{}", t64k.as_us());
    }

    #[test]
    #[should_panic(expected = "queue depth")]
    fn validate_rejects_zero_qd() {
        let mut c = SsdConfig::small(RetryKind::Zero, 0);
        c.queue_depth = 0;
        c.validate();
    }

    #[test]
    fn default_learning_is_oracle_with_drift_off() {
        let c = SsdConfig::paper(RetryKind::Rif, 1000);
        assert!(!c.learning.is_learned());
        assert!(c.learning.learner_config().is_none());
        assert!(!c.drift.enabled());
        c.validate();
    }

    #[test]
    fn learned_mode_validates_its_config() {
        let mut c = SsdConfig::small(RetryKind::Rif, 2000);
        c.learning = LearningMode::Learned(LearnerConfig::default_paper());
        c.drift = DriftClock {
            days_per_sec: 100.0,
            pe_per_sec: 5.0,
        };
        assert!(c.learning.is_learned());
        c.validate();
    }

    #[test]
    #[should_panic]
    fn validate_rejects_negative_drift() {
        let mut c = SsdConfig::small(RetryKind::Zero, 0);
        c.drift = DriftClock {
            days_per_sec: -1.0,
            pe_per_sec: 0.0,
        };
        c.validate();
    }
}
