//! Simulation results: bandwidth, latency distributions, channel-usage
//! breakdowns and retry statistics.

use rif_events::{LatencyHistogram, SimDuration};

use crate::retry::RetryKind;

/// How a flash channel's time divided among the four states of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelUsage {
    /// Channel idle with nothing to do.
    pub idle: f64,
    /// Transferring pages that decode successfully (useful work).
    pub cor: f64,
    /// Transferring uncorrectable pages or retry-overhead data (wasted).
    pub uncor: f64,
    /// Idle because the channel-level ECC buffer is full (wasted).
    pub eccwait: f64,
}

impl ChannelUsage {
    /// Builds from a four-state fraction vector (IDLE, COR, UNCOR,
    /// ECCWAIT).
    ///
    /// # Panics
    ///
    /// Panics unless `fractions` has exactly four entries.
    pub fn from_fractions(fractions: &[f64]) -> Self {
        assert_eq!(fractions.len(), 4, "expected 4 channel states");
        ChannelUsage {
            idle: fractions[0],
            cor: fractions[1],
            uncor: fractions[2],
            eccwait: fractions[3],
        }
    }

    /// Fraction of channel time wasted on retry overheads
    /// (UNCOR + ECCWAIT).
    pub fn wasted(&self) -> f64 {
        self.uncor + self.eccwait
    }

    /// Element-wise mean of several usages.
    pub fn mean(usages: &[ChannelUsage]) -> ChannelUsage {
        let n = usages.len().max(1) as f64;
        let mut m = ChannelUsage::default();
        for u in usages {
            m.idle += u.idle / n;
            m.cor += u.cor / n;
            m.uncor += u.uncor / n;
            m.eccwait += u.eccwait / n;
        }
        m
    }
}

/// The results of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The scheme that produced this report.
    pub scheme: RetryKind,
    /// The wear stage of the run.
    pub pe_cycles: u32,
    /// Host requests completed.
    pub completed_requests: u64,
    /// Total bytes moved for completed requests (reads + writes).
    pub completed_bytes: u64,
    /// Bytes of completed host reads.
    pub read_bytes: u64,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// Host-read latency distribution (arrival → data delivered).
    pub read_latency: LatencyHistogram,
    /// Per-channel usage breakdown.
    pub per_channel_usage: Vec<ChannelUsage>,
    /// Page decodes that failed at the off-chip ECC engine.
    pub decode_failures: u64,
    /// In-die retries performed by RiF's ODEAR engine.
    pub in_die_retries: u64,
    /// Pages transferred off-chip although uncorrectable (plus sentinel
    /// overhead transfers) — the UNCOR traffic.
    pub uncor_page_transfers: u64,
    /// Total page senses issued to dies.
    pub page_senses: u64,
    /// Valid-slot relocations performed by garbage collection.
    pub gc_relocations: u64,
}

impl SimReport {
    /// Aggregate I/O bandwidth in MB/s (decimal megabytes, as the paper
    /// reports).
    pub fn io_bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.completed_bytes as f64 / 1e6 / self.makespan.as_secs()
    }

    /// Read-only bandwidth in MB/s.
    pub fn read_bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.read_bytes as f64 / 1e6 / self.makespan.as_secs()
    }

    /// Mean channel usage across all channels.
    pub fn channel_usage(&self) -> ChannelUsage {
        ChannelUsage::mean(&self.per_channel_usage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_from_fractions_and_wasted() {
        let u = ChannelUsage::from_fractions(&[0.1, 0.6, 0.2, 0.1]);
        assert_eq!(u.cor, 0.6);
        assert!((u.wasted() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn usage_mean() {
        let a = ChannelUsage {
            idle: 0.2,
            cor: 0.8,
            uncor: 0.0,
            eccwait: 0.0,
        };
        let b = ChannelUsage {
            idle: 0.0,
            cor: 0.4,
            uncor: 0.4,
            eccwait: 0.2,
        };
        let m = ChannelUsage::mean(&[a, b]);
        assert!((m.idle - 0.1).abs() < 1e-12);
        assert!((m.cor - 0.6).abs() < 1e-12);
        assert!((m.uncor - 0.2).abs() < 1e-12);
        assert!((m.eccwait - 0.1).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_computation() {
        let r = SimReport {
            scheme: RetryKind::Zero,
            pe_cycles: 0,
            completed_requests: 1,
            completed_bytes: 8_000_000_000,
            read_bytes: 8_000_000_000,
            makespan: SimDuration::from_secs(1),
            read_latency: LatencyHistogram::new(),
            per_channel_usage: vec![],
            decode_failures: 0,
            in_die_retries: 0,
            uncor_page_transfers: 0,
            page_senses: 0,
            gc_relocations: 0,
        };
        assert!((r.io_bandwidth_mbps() - 8000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "4 channel states")]
    fn from_fractions_validates() {
        let _ = ChannelUsage::from_fractions(&[0.5, 0.5]);
    }
}
