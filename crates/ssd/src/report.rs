//! Simulation results: bandwidth, latency distributions, channel-usage
//! breakdowns and retry statistics.

use rif_events::{LatencyHistogram, MetricsRegistry, SimDuration};

use crate::retry::RetryKind;

/// Maps non-finite fractions (NaN from a zero-length tracker window,
/// infinities from degenerate configs) to zero so aggregates stay usable.
fn finite_or_zero(x: f64) -> f64 {
    if x.is_finite() {
        x
    } else {
        0.0
    }
}

/// How a flash channel's time divided among the four states of Fig. 18.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ChannelUsage {
    /// Channel idle with nothing to do.
    pub idle: f64,
    /// Transferring pages that decode successfully (useful work).
    pub cor: f64,
    /// Transferring uncorrectable pages or retry-overhead data (wasted).
    pub uncor: f64,
    /// Idle because the channel-level ECC buffer is full (wasted).
    pub eccwait: f64,
}

impl ChannelUsage {
    /// Builds from a four-state fraction vector (IDLE, COR, UNCOR,
    /// ECCWAIT).
    ///
    /// # Panics
    ///
    /// Panics unless `fractions` has exactly four entries.
    pub fn from_fractions(fractions: &[f64]) -> Self {
        assert_eq!(fractions.len(), 4, "expected 4 channel states");
        ChannelUsage {
            idle: fractions[0],
            cor: fractions[1],
            uncor: fractions[2],
            eccwait: fractions[3],
        }
    }

    /// Fraction of channel time wasted on retry overheads
    /// (UNCOR + ECCWAIT). Non-finite fractions count as zero so a
    /// zero-length run cannot poison downstream aggregates.
    pub fn wasted(&self) -> f64 {
        finite_or_zero(self.uncor) + finite_or_zero(self.eccwait)
    }

    /// Element-wise mean of several usages. An empty slice yields the
    /// all-zero usage; non-finite components are treated as zero.
    pub fn mean(usages: &[ChannelUsage]) -> ChannelUsage {
        let n = usages.len().max(1) as f64;
        let mut m = ChannelUsage::default();
        for u in usages {
            m.idle += finite_or_zero(u.idle) / n;
            m.cor += finite_or_zero(u.cor) / n;
            m.uncor += finite_or_zero(u.uncor) / n;
            m.eccwait += finite_or_zero(u.eccwait) / n;
        }
        m
    }
}

/// Aggregate state of the online threshold learner at the end of a
/// learned-mode run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearnerSummary {
    /// Read outcomes folded into the estimates.
    pub updates: u64,
    /// Updates that consumed a ones-count re-calibration observation.
    pub recalibrations: u64,
    /// Updates cut short by the valid V_REF offset window.
    pub clamps: u64,
    /// Blocks with a learned estimate.
    pub blocks_tracked: u64,
    /// Mean absolute estimate error against the oracle's optimal offset,
    /// averaged over every update of the run (volts).
    pub mean_abs_error: f64,
}

/// Aggregate state of the hybrid SLC/QLC subsystem at the end of a run
/// (DESIGN §14).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HybridSummary {
    /// Final SLC-cache occupancy in `[0, 1]`.
    pub cache_occupancy: f64,
    /// Slots migrated SLC→QLC (background drain + forced evictions).
    pub migrated_slots: u64,
    /// Migrations forced by cache-overflow pressure on the write path.
    pub forced_evictions: u64,
    /// Slots rewritten by the retention-refresh scan.
    pub refreshed_slots: u64,
    /// Background die operations issued (GC + migrate + refresh).
    pub bg_ops: u64,
}

/// The results of one simulated run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// The populated metrics registry, when the run was started with
    /// [`crate::Simulator::with_metrics`]; `None` otherwise.
    pub metrics: Option<MetricsRegistry>,
    /// Threshold-learner summary; `None` when the run used the oracle
    /// tables (which also keeps oracle-mode JSON byte-identical to
    /// pre-learning reports).
    pub learner: Option<LearnerSummary>,
    /// The scheme that produced this report.
    pub scheme: RetryKind,
    /// The wear stage of the run.
    pub pe_cycles: u32,
    /// Host requests completed.
    pub completed_requests: u64,
    /// Total bytes moved for completed requests (reads + writes).
    pub completed_bytes: u64,
    /// Bytes of completed host reads.
    pub read_bytes: u64,
    /// Time of the last completion.
    pub makespan: SimDuration,
    /// Host-read latency distribution (arrival → data delivered).
    pub read_latency: LatencyHistogram,
    /// Per-channel usage breakdown.
    pub per_channel_usage: Vec<ChannelUsage>,
    /// Page decodes that failed at the off-chip ECC engine.
    pub decode_failures: u64,
    /// In-die retries performed by RiF's ODEAR engine.
    pub in_die_retries: u64,
    /// Pages transferred off-chip although uncorrectable (plus sentinel
    /// overhead transfers) — the UNCOR traffic.
    pub uncor_page_transfers: u64,
    /// Total page senses issued to dies.
    pub page_senses: u64,
    /// Valid-slot relocations performed by garbage collection.
    pub gc_relocations: u64,
    /// Hybrid-subsystem summary; `None` on a pure-TLC run (which also
    /// keeps non-hybrid JSON byte-identical to pre-hybrid reports).
    pub hybrid: Option<HybridSummary>,
}

impl SimReport {
    /// Aggregate I/O bandwidth in MB/s (decimal megabytes, as the paper
    /// reports).
    pub fn io_bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.completed_bytes as f64 / 1e6 / self.makespan.as_secs()
    }

    /// Read-only bandwidth in MB/s.
    pub fn read_bandwidth_mbps(&self) -> f64 {
        if self.makespan.is_zero() {
            return 0.0;
        }
        self.read_bytes as f64 / 1e6 / self.makespan.as_secs()
    }

    /// Mean channel usage across all channels.
    pub fn channel_usage(&self) -> ChannelUsage {
        ChannelUsage::mean(&self.per_channel_usage)
    }

    /// Serializes the report as canonical JSON: fixed key order, fixed
    /// 6-decimal float formatting. Two identical runs produce
    /// byte-identical output, which the determinism tests rely on.
    pub fn to_json(&self) -> String {
        fn f(x: f64) -> String {
            format!("{:.6}", finite_or_zero(x))
        }
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        s.push_str(&format!("  \"scheme\": \"{}\",\n", self.scheme.label()));
        s.push_str(&format!("  \"pe_cycles\": {},\n", self.pe_cycles));
        s.push_str(&format!(
            "  \"completed_requests\": {},\n",
            self.completed_requests
        ));
        s.push_str(&format!(
            "  \"completed_bytes\": {},\n",
            self.completed_bytes
        ));
        s.push_str(&format!("  \"read_bytes\": {},\n", self.read_bytes));
        s.push_str(&format!("  \"makespan_ns\": {},\n", self.makespan.as_ns()));
        s.push_str(&format!(
            "  \"io_bandwidth_mbps\": {},\n",
            f(self.io_bandwidth_mbps())
        ));
        s.push_str(&format!(
            "  \"read_latency\": {{\"count\": {}, \"mean_us\": {}, \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}}},\n",
            self.read_latency.count(),
            f(self.read_latency.mean().as_us()),
            f(self.read_latency.percentile(50.0).unwrap_or(SimDuration::ZERO).as_us()),
            f(self.read_latency.percentile(99.0).unwrap_or(SimDuration::ZERO).as_us()),
            f(self.read_latency.max().as_us()),
        ));
        s.push_str("  \"per_channel_usage\": [");
        for (i, u) in self.per_channel_usage.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"idle\": {}, \"cor\": {}, \"uncor\": {}, \"eccwait\": {}}}",
                f(u.idle),
                f(u.cor),
                f(u.uncor),
                f(u.eccwait)
            ));
        }
        s.push_str("],\n");
        s.push_str(&format!(
            "  \"decode_failures\": {},\n",
            self.decode_failures
        ));
        s.push_str(&format!("  \"in_die_retries\": {},\n", self.in_die_retries));
        s.push_str(&format!(
            "  \"uncor_page_transfers\": {},\n",
            self.uncor_page_transfers
        ));
        s.push_str(&format!("  \"page_senses\": {},\n", self.page_senses));
        s.push_str(&format!("  \"gc_relocations\": {},\n", self.gc_relocations));
        if let Some(l) = &self.learner {
            s.push_str(&format!(
                "  \"learner\": {{\"updates\": {}, \"recalibrations\": {}, \"clamps\": {}, \"blocks_tracked\": {}, \"mean_abs_error\": {}}},\n",
                l.updates, l.recalibrations, l.clamps, l.blocks_tracked, f(l.mean_abs_error),
            ));
        }
        if let Some(h) = &self.hybrid {
            s.push_str(&format!(
                "  \"hybrid\": {{\"cache_occupancy\": {}, \"migrated_slots\": {}, \"forced_evictions\": {}, \"refreshed_slots\": {}, \"bg_ops\": {}}},\n",
                f(h.cache_occupancy),
                h.migrated_slots,
                h.forced_evictions,
                h.refreshed_slots,
                h.bg_ops,
            ));
        }
        s.push_str("  \"metrics\": [");
        if let Some(m) = &self.metrics {
            for (i, line) in m.lines().iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                s.push('"');
                s.push_str(line);
                s.push('"');
            }
        }
        s.push_str("]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usage_from_fractions_and_wasted() {
        let u = ChannelUsage::from_fractions(&[0.1, 0.6, 0.2, 0.1]);
        assert_eq!(u.cor, 0.6);
        assert!((u.wasted() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn usage_mean() {
        let a = ChannelUsage {
            idle: 0.2,
            cor: 0.8,
            uncor: 0.0,
            eccwait: 0.0,
        };
        let b = ChannelUsage {
            idle: 0.0,
            cor: 0.4,
            uncor: 0.4,
            eccwait: 0.2,
        };
        let m = ChannelUsage::mean(&[a, b]);
        assert!((m.idle - 0.1).abs() < 1e-12);
        assert!((m.cor - 0.6).abs() < 1e-12);
        assert!((m.uncor - 0.2).abs() < 1e-12);
        assert!((m.eccwait - 0.1).abs() < 1e-12);
    }

    #[test]
    fn mean_of_empty_slice_is_zero_usage() {
        let m = ChannelUsage::mean(&[]);
        assert_eq!(m, ChannelUsage::default());
        assert_eq!(m.wasted(), 0.0);
    }

    #[test]
    fn nan_fractions_are_neutralized() {
        let bad = ChannelUsage {
            idle: f64::NAN,
            cor: 0.5,
            uncor: f64::NAN,
            eccwait: f64::INFINITY,
        };
        assert_eq!(bad.wasted(), 0.0);
        let ok = ChannelUsage {
            idle: 0.0,
            cor: 0.5,
            uncor: 0.3,
            eccwait: 0.2,
        };
        let m = ChannelUsage::mean(&[bad, ok]);
        assert!(m.idle.is_finite() && m.uncor.is_finite() && m.eccwait.is_finite());
        assert!((m.cor - 0.5).abs() < 1e-12);
        assert!((m.uncor - 0.15).abs() < 1e-12);
        assert!((m.wasted() - 0.25).abs() < 1e-12);
    }

    fn sample_report() -> SimReport {
        SimReport {
            metrics: None,
            learner: None,
            scheme: RetryKind::Zero,
            pe_cycles: 0,
            completed_requests: 1,
            completed_bytes: 8_000_000_000,
            read_bytes: 8_000_000_000,
            makespan: SimDuration::from_secs(1),
            read_latency: LatencyHistogram::new(),
            per_channel_usage: vec![],
            decode_failures: 0,
            in_die_retries: 0,
            uncor_page_transfers: 0,
            page_senses: 0,
            gc_relocations: 0,
            hybrid: None,
        }
    }

    #[test]
    fn to_json_is_stable_and_parsable_shape() {
        let r = sample_report();
        let a = r.to_json();
        let b = r.to_json();
        assert_eq!(a, b, "canonical JSON must be reproducible");
        assert!(a.contains("\"scheme\": \"SSDzero\""));
        assert!(a.contains("\"completed_bytes\": 8000000000"));
        assert!(a.ends_with("]\n}\n"));
    }

    #[test]
    fn bandwidth_computation() {
        let r = sample_report();
        assert!((r.io_bandwidth_mbps() - 8000.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "4 channel states")]
    fn from_fractions_validates() {
        let _ = ChannelUsage::from_fractions(&[0.5, 0.5]);
    }

    #[test]
    fn learner_summary_appears_only_in_learned_reports() {
        let oracle = sample_report();
        assert!(!oracle.to_json().contains("\"learner\""));
        let mut learned = sample_report();
        learned.learner = Some(LearnerSummary {
            updates: 10,
            recalibrations: 3,
            clamps: 1,
            blocks_tracked: 4,
            mean_abs_error: 0.0123456789,
        });
        let j = learned.to_json();
        assert!(j.contains(
            "\"learner\": {\"updates\": 10, \"recalibrations\": 3, \
             \"clamps\": 1, \"blocks_tracked\": 4, \"mean_abs_error\": 0.012346}"
        ));
        assert_eq!(j.to_string(), learned.to_json(), "canonical across calls");
    }

    #[test]
    fn hybrid_summary_appears_only_in_hybrid_reports() {
        let plain = sample_report();
        assert!(!plain.to_json().contains("\"hybrid\""));
        let mut hybrid = sample_report();
        hybrid.hybrid = Some(HybridSummary {
            cache_occupancy: 0.375,
            migrated_slots: 20,
            forced_evictions: 2,
            refreshed_slots: 5,
            bg_ops: 27,
        });
        let j = hybrid.to_json();
        assert!(j.contains(
            "\"hybrid\": {\"cache_occupancy\": 0.375000, \"migrated_slots\": 20, \
             \"forced_evictions\": 2, \"refreshed_slots\": 5, \"bg_ops\": 27}"
        ));
        assert_eq!(j, hybrid.to_json(), "canonical across calls");
    }
}
