//! Refresh (data-scrubbing) policy analytics.
//!
//! The paper's RP validation assumes "programmed flash blocks are
//! refreshed every month" (§IV-B, footnote 3): periodic rewriting bounds
//! retention age and therefore the retry rate. Refresh is not free — it
//! consumes program bandwidth and P/E endurance. [`RefreshPolicy`]
//! quantifies that trade-off; the `ablation_refresh` harness sweeps the
//! interval against simulated bandwidth.

use rif_flash::geometry::FlashGeometry;
use rif_flash::rber::{BlockProfile, ErrorModel};

/// A periodic whole-device refresh policy.
///
/// # Example
///
/// ```
/// use rif_ssd::refresh::RefreshPolicy;
/// use rif_flash::FlashGeometry;
///
/// let policy = RefreshPolicy::monthly();
/// let g = FlashGeometry::paper();
/// // Refreshing 2 TiB monthly costs < 1 MB/s of write bandwidth...
/// assert!(policy.write_bandwidth(&g) < 1e6);
/// // ...but a 2-day interval would cost ~13 MB/s.
/// assert!(RefreshPolicy::new(2.0).write_bandwidth(&g) > 1e7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefreshPolicy {
    interval_days: f64,
}

impl RefreshPolicy {
    /// The paper's monthly refresh.
    pub fn monthly() -> Self {
        RefreshPolicy {
            interval_days: 30.0,
        }
    }

    /// A policy refreshing every `interval_days`.
    ///
    /// # Panics
    ///
    /// Panics unless the interval is positive.
    pub fn new(interval_days: f64) -> Self {
        assert!(interval_days > 0.0, "refresh interval must be positive");
        RefreshPolicy { interval_days }
    }

    /// The refresh interval in days.
    pub fn interval_days(&self) -> f64 {
        self.interval_days
    }

    /// Bytes rewritten per day to keep every block within the interval.
    pub fn bytes_per_day(&self, g: &FlashGeometry) -> f64 {
        g.capacity_bytes() as f64 / self.interval_days
    }

    /// Sustained write bandwidth (bytes/s) consumed by refresh.
    pub fn write_bandwidth(&self, g: &FlashGeometry) -> f64 {
        self.bytes_per_day(g) / 86_400.0
    }

    /// P/E cycles per year added by refresh alone.
    pub fn pe_cycles_per_year(&self) -> f64 {
        365.25 / self.interval_days
    }

    /// Filters a scan window of `(slot, age_days)` pairs down to the
    /// slots whose retention age has reached the interval — the rewrite
    /// work the background scheduler turns into die operations (DESIGN
    /// §14). Order is preserved, so a deterministic scan stays
    /// deterministic.
    pub fn refresh_due<I>(&self, ages: I) -> impl Iterator<Item = u64>
    where
        I: IntoIterator<Item = (u64, f64)>,
    {
        let interval = self.interval_days;
        ages.into_iter()
            .filter_map(move |(slot, age)| (age >= interval).then_some(slot))
    }

    /// Fraction of *cold* reads that need a retry under this policy at
    /// `pe_cycles`: cold ages are uniform over the interval, so the
    /// fraction is the share of the interval past the median block's
    /// capability-crossing day.
    pub fn cold_retry_fraction(&self, model: &ErrorModel, pe_cycles: u32, cap: f64) -> f64 {
        match model.days_to_exceed(BlockProfile::median(), pe_cycles, cap, self.interval_days) {
            Some(day) => (1.0 - day / self.interval_days).clamp(0.0, 1.0),
            None => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monthly_matches_paper_assumption() {
        assert_eq!(RefreshPolicy::monthly().interval_days(), 30.0);
        assert!((RefreshPolicy::monthly().pe_cycles_per_year() - 12.175).abs() < 0.01);
    }

    #[test]
    fn shorter_interval_costs_more_writes() {
        let g = FlashGeometry::paper();
        let weekly = RefreshPolicy::new(7.0).write_bandwidth(&g);
        let monthly = RefreshPolicy::monthly().write_bandwidth(&g);
        assert!(weekly > monthly * 4.0);
    }

    #[test]
    fn retry_fraction_shrinks_with_shorter_interval() {
        let model = ErrorModel::calibrated();
        let f30 = RefreshPolicy::new(30.0).cold_retry_fraction(&model, 1000, 0.0085);
        let f7 = RefreshPolicy::new(7.0).cold_retry_fraction(&model, 1000, 0.0085);
        // At 1K P/E the median block crosses at ≈8 days, so a 7-day
        // refresh nearly eliminates cold retries while a monthly one
        // leaves most cold reads retrying.
        assert!(f30 > 0.6, "30-day fraction {f30}");
        assert!(f7 < 0.1, "7-day fraction {f7}");
    }

    #[test]
    fn retry_fraction_grows_with_wear() {
        let model = ErrorModel::calibrated();
        let p = RefreshPolicy::monthly();
        let f0 = p.cold_retry_fraction(&model, 0, 0.0085);
        let f2k = p.cold_retry_fraction(&model, 2000, 0.0085);
        assert!(f2k > f0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_interval() {
        let _ = RefreshPolicy::new(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_negative_interval() {
        let _ = RefreshPolicy::new(-3.0);
    }

    #[test]
    fn refresh_due_selects_exactly_the_aged_slots() {
        let p = RefreshPolicy::new(10.0);
        let window = vec![(1u64, 3.0), (2, 10.0), (3, 25.0), (4, 9.999)];
        let due: Vec<u64> = p.refresh_due(window).collect();
        // The boundary age counts as due; order is preserved.
        assert_eq!(due, vec![2, 3]);
    }

    #[test]
    fn refresh_due_on_fresh_data_is_empty() {
        let p = RefreshPolicy::monthly();
        let due: Vec<u64> = p.refresh_due((0..50u64).map(|s| (s, 0.5))).collect();
        assert!(due.is_empty());
    }

    #[test]
    fn cold_retry_fraction_saturates_at_capability_extremes() {
        let model = ErrorModel::calibrated();
        let p = RefreshPolicy::monthly();
        // A capability no block ever exceeds → no cold read retries.
        assert_eq!(p.cold_retry_fraction(&model, 2000, 0.5), 0.0);
        // A capability exceeded immediately → every cold read retries,
        // and the clamp keeps the fraction at exactly 1.
        let f = p.cold_retry_fraction(&model, 2000, 1e-9);
        assert!((f - 1.0).abs() < 1e-9, "fraction {f}");
    }

    #[test]
    fn cold_retry_fraction_stays_in_unit_interval_across_wear() {
        let model = ErrorModel::calibrated();
        for pe in [0u32, 500, 1000, 2000, 5000] {
            for interval in [0.5, 7.0, 30.0, 365.0] {
                let f = RefreshPolicy::new(interval).cold_retry_fraction(&model, pe, 0.0085);
                assert!((0.0..=1.0).contains(&f), "pe {pe} interval {interval}: {f}");
            }
        }
    }
}
