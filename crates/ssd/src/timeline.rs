//! The 256-KiB worked example of Figs. 7 and 8(c).
//!
//! The paper's root-cause analysis walks one 256-KiB sequential host read
//! through a 2-die flash channel: four 64-KiB multi-plane commands A–D,
//! where A and B require read-retry. SSDzero finishes in 252 µs, SSDone in
//! 418 µs (the two failed commands waste transfers and long decodes), and
//! a RiF-enabled die in 292 µs (the retries never leave the dies).
//!
//! [`example_256k`] reproduces the scenario through the real simulator:
//! one channel, two dies, forced failures on commands A and B.

use rif_events::SimDuration;
use rif_flash::geometry::FlashGeometry;
use rif_workloads::{IoOp, IoRequest, Trace};

use crate::config::SsdConfig;
use crate::report::SimReport;
use crate::retry::RetryKind;
use crate::simulator::Simulator;

/// Result of the worked example for one scheme.
#[derive(Debug, Clone)]
pub struct TimelineResult {
    /// The scheme simulated.
    pub scheme: RetryKind,
    /// Time from issue until the last page is decoded and delivered to
    /// the controller (excluding the host-link hop, as the paper draws).
    pub total: SimDuration,
    /// The full report for further inspection.
    pub report: SimReport,
}

/// The Fig. 7/8 scenario itself: configuration and host trace, for
/// callers that want to attach their own tracer or metrics to the run.
///
/// The geometry is the figure's: one channel with two 4-plane dies. The
/// 256-KiB read becomes commands A–D (two per die); slots 0 and 1 (A and
/// B) are forced to require a retry.
pub fn example_256k_setup(scheme: RetryKind) -> (SsdConfig, Trace) {
    let mut cfg = SsdConfig::paper(scheme, 0);
    cfg.geometry = FlashGeometry {
        channels: 1,
        dies_per_channel: 2,
        planes_per_die: 4,
        blocks_per_plane: 64,
        pages_per_block: 64,
        page_bytes: 16 * 1024,
    };
    // The figure tracks the flash channel only; make the host hop
    // negligible so `makespan` ends at the last decode.
    cfg.host_bw_bytes_per_sec = u64::MAX / 2;
    // The figure's ECC holds a full multi-plane command while the next
    // one streams in.
    cfg.ecc_buffer_pages = 8;
    cfg.forced_failure_slots = Some(vec![0, 1]);
    cfg.queue_depth = 1;
    let trace = Trace::new(vec![IoRequest {
        arrival: rif_events::SimTime::ZERO,
        op: IoOp::Read,
        offset: 0,
        bytes: 256 * 1024,
    }]);
    (cfg, trace)
}

/// Runs the Fig. 7/8 scenario for `scheme` and returns its completion
/// time (see [`example_256k_setup`]).
pub fn example_256k(scheme: RetryKind) -> TimelineResult {
    let (cfg, trace) = example_256k_setup(scheme);
    let report = Simulator::new(cfg).run(&trace);
    TimelineResult {
        scheme,
        total: report.makespan,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ssdzero_completes_in_about_252us() {
        let r = example_256k(RetryKind::Zero);
        let us = r.total.as_us();
        // Paper: 252 µs (sense 40 + 16 page transfers x 13.25 + tail ECC).
        assert!((240.0..275.0).contains(&us), "SSDzero took {us}");
    }

    #[test]
    fn ssdone_pays_the_reactive_retry_penalty() {
        let zero = example_256k(RetryKind::Zero).total.as_us();
        let one = example_256k(RetryKind::IdealOne).total.as_us();
        // Paper: 418 µs vs 252 µs (+166). Accept the same +40–80 % band.
        assert!(one > zero * 1.4, "SSDone {one} vs SSDzero {zero}");
        assert!(one < zero * 1.9, "SSDone {one} suspiciously slow");
    }

    #[test]
    fn rif_lands_between_zero_and_one() {
        let zero = example_256k(RetryKind::Zero).total.as_us();
        let one = example_256k(RetryKind::IdealOne).total.as_us();
        let rif = example_256k(RetryKind::Rif).total.as_us();
        // Paper: 292 µs — two in-die retries cost one extra tR each plus
        // the prediction latency, far less than SSDone's wasted rounds.
        assert!(
            rif > zero,
            "RiF {rif} cannot beat the no-retry bound {zero}"
        );
        assert!(rif < one * 0.85, "RiF {rif} vs SSDone {one}");
        assert!((275.0..330.0).contains(&rif), "RiF took {rif}");
    }

    #[test]
    fn rif_example_has_no_wasted_transfers() {
        let r = example_256k(RetryKind::Rif);
        assert_eq!(r.report.uncor_page_transfers, 0);
        assert_eq!(r.report.in_die_retries, 2); // A and B
        assert_eq!(r.report.decode_failures, 0);
    }

    #[test]
    fn ssdone_example_wastes_eight_transfers() {
        let r = example_256k(RetryKind::IdealOne);
        // A and B: 4 pages each transferred uncorrectable.
        assert_eq!(r.report.uncor_page_transfers, 8);
        assert_eq!(r.report.decode_failures, 8);
    }
}
