//! Discrete-event SSD simulator with read-retry schemes — the equivalent
//! of the paper's extended MQSim-E (§III-B1, §VI-A).
//!
//! The simulator models the full read path of the target SSD of Fig. 5 /
//! Table I: host interface (8 GB/s), 8 flash channels (1.2 GB/s each) with
//! one channel-level LDPC engine per channel (finite input buffer), 4 dies
//! per channel with 4 planes each, multi-plane senses, per-page DMA
//! transfers, RBER-dependent ECC decode latency, and per-scheme read-retry
//! behaviour:
//!
//! | Config | Scheme |
//! |--------|--------|
//! | `SSDzero` | hypothetical, no retries (upper bound) |
//! | `SSDone`  | ideal reactive retry, N_RR = 1 |
//! | `SENC`    | Sentinel (MICRO'20): extra sentinel-cell read for CSB/MSB pages |
//! | `SWR`     | Swift-Read (ISSCC'22): 2×tR in-die retry command |
//! | `SWR+`    | SWR plus proactive V_REF tracking |
//! | `RPSSD`   | RP at the controller: early-terminates hopeless decodes |
//! | `RiFSSD`  | the proposed scheme: on-die RP + RVS |
//!
//! Modules: [`config`] (Table I parameters), [`ftl`] (slot-granular page
//! mapping, write allocation, greedy GC), [`retention`] (per-slot data
//! ages driving retry frequency), [`retry`] (scheme behaviours),
//! [`report`] (bandwidth/latency/channel-usage results), [`simulator`]
//! (the event engine), and [`timeline`] (the 256-KiB worked example of
//! Figs. 7/8).

pub mod config;
pub mod ftl;
pub mod hybrid;
pub mod refresh;
pub mod report;
pub mod retention;
pub mod retry;
pub mod simulator;
pub mod timeline;
pub mod tracecheck;

pub use config::{LearningMode, SsdConfig};
pub use hybrid::{BgConfig, BgKind, CellMode, HybridConfig, HybridFtl, MigrationPolicy};
pub use report::{ChannelUsage, HybridSummary, LearnerSummary, SimReport};
pub use retry::RetryKind;
pub use rif_flash::learn::{DriftClock, LearnerConfig, LearnerState, LearnerStateError};
pub use simulator::{Completion, Simulator};
pub use tracecheck::{TraceChecker, Violation};
