//! Trace-as-oracle invariant checking.
//!
//! A [`TraceChecker`] replays a JSONL trace emitted by the simulator (see
//! the schema in [`rif_events::trace`]) and asserts the engine's
//! conservation laws, turning every traced run into a self-verifying one:
//!
//! 1. **Well-formed spans** — ids unique and non-zero, every span ends
//!    exactly once, never before it begins, timestamps non-decreasing.
//! 2. **Nesting** — a child span lies within its parent's interval.
//! 3. **Resource exclusivity** — spans on one resource (`die:N`,
//!    `chan:N`, `ecc:N`, `host`) never overlap: dies run one command at
//!    a time and channels serialize transfers.
//! 4. **Request conservation** — every admitted request owns exactly one
//!    request span, completes exactly once, and the `requests.admitted`
//!    and `requests.completed` counters agree.
//! 5. **Byte conservation** — bytes admitted on request spans equal the
//!    `bytes.completed` counter total.
//! 6. **ECCWAIT ⊆ decoder busy** — a channel may sit in ECCWAIT only
//!    while its ECC engine is decoding (a full buffer with an idle
//!    decoder would be a scheduling bug).
//! 7. **Learner telemetry** — every `recal` span nests directly inside a
//!    `retry` span (threshold re-calibration happens only as part of a
//!    retry), and every `learner.*` gauge observation is finite.

use std::collections::BTreeMap;

use rif_events::trace::{TraceParseError, TraceRecord};
use rif_events::SimTime;

/// One violated invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Short rule name (`span-form`, `nesting`, `exclusivity`,
    /// `request-conservation`, `byte-conservation`, `eccwait`, `order`,
    /// `learner`).
    pub rule: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.rule, self.detail)
    }
}

#[derive(Debug, Clone)]
struct SpanInfo {
    name: String,
    begin: SimTime,
    end: Option<SimTime>,
    parent: Option<u64>,
    res: Option<String>,
    req: Option<u64>,
    bytes: Option<u64>,
    /// Position in the record stream, for stable per-resource ordering.
    seq: usize,
}

/// Replays parsed trace records and collects invariant [`Violation`]s.
///
/// # Example
///
/// ```
/// use rif_ssd::tracecheck::TraceChecker;
///
/// let violations = TraceChecker::check_jsonl("").unwrap();
/// assert!(violations.is_empty());
/// ```
#[derive(Debug, Default)]
pub struct TraceChecker {
    violations: Vec<Violation>,
}

impl TraceChecker {
    /// Parses a JSONL document and checks it.
    ///
    /// # Errors
    ///
    /// Returns the parse error of the first malformed line; invariant
    /// violations are *not* errors — they come back in the `Ok` vector.
    pub fn check_jsonl(text: &str) -> Result<Vec<Violation>, TraceParseError> {
        Ok(Self::check(&TraceRecord::parse_jsonl(text)?))
    }

    /// Checks already-parsed records, returning every violation found
    /// (empty when the trace satisfies all invariants).
    pub fn check(records: &[TraceRecord]) -> Vec<Violation> {
        let mut c = TraceChecker::default();
        let spans = c.collect_spans(records);
        c.check_order(records);
        c.check_nesting(&spans);
        c.check_exclusivity(&spans);
        c.check_requests(records, &spans);
        c.check_bytes(records, &spans);
        c.check_eccwait(records, &spans);
        c.check_learner(records, &spans);
        c.violations
    }

    fn fail(&mut self, rule: &'static str, detail: String) {
        self.violations.push(Violation { rule, detail });
    }

    /// Builds the span table, flagging malformed begin/end pairs.
    fn collect_spans(&mut self, records: &[TraceRecord]) -> BTreeMap<u64, SpanInfo> {
        let mut spans: BTreeMap<u64, SpanInfo> = BTreeMap::new();
        for (seq, r) in records.iter().enumerate() {
            match r {
                TraceRecord::SpanBegin {
                    t,
                    name,
                    id,
                    parent,
                    res,
                    req,
                    bytes,
                } => {
                    if *id == 0 {
                        self.fail("span-form", format!("span id 0 at {} ns", t.as_ns()));
                        continue;
                    }
                    if spans.contains_key(id) {
                        self.fail("span-form", format!("duplicate span id {id}"));
                        continue;
                    }
                    spans.insert(
                        *id,
                        SpanInfo {
                            name: name.clone(),
                            begin: *t,
                            end: None,
                            parent: *parent,
                            res: res.clone(),
                            req: *req,
                            bytes: *bytes,
                            seq,
                        },
                    );
                }
                TraceRecord::SpanEnd { t, id } => match spans.get_mut(id) {
                    None => self.fail("span-form", format!("end of unknown span {id}")),
                    Some(s) if s.end.is_some() => {
                        self.fail("span-form", format!("span {id} ({}) ended twice", s.name))
                    }
                    Some(s) => {
                        if *t < s.begin {
                            self.fail(
                                "span-form",
                                format!(
                                    "span {id} ({}) ends at {} ns before its begin {} ns",
                                    s.name,
                                    t.as_ns(),
                                    s.begin.as_ns()
                                ),
                            );
                        }
                        s.end = Some(*t);
                    }
                },
                _ => {}
            }
        }
        for (id, s) in &spans {
            if s.end.is_none() {
                self.fail("span-form", format!("span {id} ({}) never ends", s.name));
            }
        }
        spans
    }

    /// Record timestamps must be non-decreasing: the simulator emits in
    /// event order.
    fn check_order(&mut self, records: &[TraceRecord]) {
        let mut last = SimTime::ZERO;
        for r in records {
            let t = r.time();
            if t < last {
                self.fail(
                    "order",
                    format!(
                        "time went backwards: {} ns after {} ns",
                        t.as_ns(),
                        last.as_ns()
                    ),
                );
            }
            last = t;
        }
    }

    /// A child span must lie within its parent's interval.
    fn check_nesting(&mut self, spans: &BTreeMap<u64, SpanInfo>) {
        for (id, s) in spans {
            let Some(pid) = s.parent else { continue };
            let Some(p) = spans.get(&pid) else {
                self.fail(
                    "nesting",
                    format!("span {id} ({}) has unknown parent {pid}", s.name),
                );
                continue;
            };
            if s.begin < p.begin {
                self.fail(
                    "nesting",
                    format!(
                        "span {id} ({}) begins at {} ns before parent {pid} ({}) at {} ns",
                        s.name,
                        s.begin.as_ns(),
                        p.name,
                        p.begin.as_ns()
                    ),
                );
            }
            if let (Some(ce), Some(pe)) = (s.end, p.end) {
                if ce > pe {
                    self.fail(
                        "nesting",
                        format!(
                            "span {id} ({}) ends at {} ns after parent {pid} ({}) at {} ns",
                            s.name,
                            ce.as_ns(),
                            p.name,
                            pe.as_ns()
                        ),
                    );
                }
            }
        }
    }

    /// Spans sharing a resource must not overlap (touching endpoints are
    /// fine — a die may start its next command the instant one finishes).
    fn check_exclusivity(&mut self, spans: &BTreeMap<u64, SpanInfo>) {
        let mut by_res: BTreeMap<&str, Vec<(&u64, &SpanInfo)>> = BTreeMap::new();
        for (id, s) in spans {
            if let Some(res) = &s.res {
                by_res.entry(res.as_str()).or_default().push((id, s));
            }
        }
        for (res, mut list) in by_res {
            list.sort_by_key(|(_, s)| (s.begin, s.seq));
            for w in list.windows(2) {
                let (id_a, a) = w[0];
                let (id_b, b) = w[1];
                let Some(end_a) = a.end else { continue };
                if b.begin < end_a {
                    self.fail(
                        "exclusivity",
                        format!(
                            "resource {res}: span {id_b} ({}) begins at {} ns while span \
                             {id_a} ({}) still runs until {} ns",
                            b.name,
                            b.begin.as_ns(),
                            a.name,
                            end_a.as_ns()
                        ),
                    );
                }
            }
        }
    }

    /// Admissions, completions and request spans must agree one-to-one.
    fn check_requests(&mut self, records: &[TraceRecord], spans: &BTreeMap<u64, SpanInfo>) {
        let mut admitted = 0u64;
        let mut completed = 0u64;
        for r in records {
            if let TraceRecord::Counter { key, delta, .. } = r {
                match key.as_str() {
                    "requests.admitted" => admitted += delta,
                    "requests.completed" => completed += delta,
                    _ => {}
                }
            }
        }
        if admitted != completed {
            self.fail(
                "request-conservation",
                format!("{admitted} requests admitted but {completed} completed"),
            );
        }
        let mut seen: BTreeMap<u64, u64> = BTreeMap::new(); // req -> span count
        let mut request_spans = 0u64;
        for (id, s) in spans {
            if !s.name.starts_with("request_") {
                continue;
            }
            request_spans += 1;
            match s.req {
                None => self.fail(
                    "request-conservation",
                    format!("request span {id} carries no request id"),
                ),
                Some(req) => *seen.entry(req).or_insert(0) += 1,
            }
        }
        for (req, n) in &seen {
            if *n != 1 {
                self.fail(
                    "request-conservation",
                    format!("request {req} admitted {n} times"),
                );
            }
        }
        if request_spans != admitted {
            self.fail(
                "request-conservation",
                format!("{request_spans} request spans but {admitted} admissions counted"),
            );
        }
    }

    /// Bytes promised at admission must equal bytes delivered.
    fn check_bytes(&mut self, records: &[TraceRecord], spans: &BTreeMap<u64, SpanInfo>) {
        let bytes_in: u64 = spans
            .values()
            .filter(|s| s.name.starts_with("request_"))
            .map(|s| s.bytes.unwrap_or(0))
            .sum();
        let bytes_out: u64 = records
            .iter()
            .filter_map(|r| match r {
                TraceRecord::Counter { key, delta, .. } if key == "bytes.completed" => Some(*delta),
                _ => None,
            })
            .sum();
        if bytes_in != bytes_out {
            self.fail(
                "byte-conservation",
                format!("{bytes_in} bytes admitted but {bytes_out} completed"),
            );
        }
    }

    /// Every closed ECCWAIT interval of `chan:N` must be covered by
    /// decode spans on `ecc:N`.
    fn check_eccwait(&mut self, records: &[TraceRecord], spans: &BTreeMap<u64, SpanInfo>) {
        // Merge the decode intervals of each ECC engine.
        let mut busy: BTreeMap<String, Vec<(SimTime, SimTime)>> = BTreeMap::new();
        for s in spans.values() {
            if s.name != "decode" {
                continue;
            }
            if let (Some(res), Some(end)) = (&s.res, s.end) {
                busy.entry(res.clone()).or_default().push((s.begin, end));
            }
        }
        for list in busy.values_mut() {
            list.sort();
            let mut merged: Vec<(SimTime, SimTime)> = Vec::with_capacity(list.len());
            for &(b, e) in list.iter() {
                match merged.last_mut() {
                    Some(last) if b <= last.1 => last.1 = last.1.max(e),
                    _ => merged.push((b, e)),
                }
            }
            *list = merged;
        }
        // Walk each channel's state timeline.
        let mut wait_since: BTreeMap<String, SimTime> = BTreeMap::new();
        for r in records {
            let TraceRecord::State { t, res, state } = r else {
                continue;
            };
            if state == "ECCWAIT" {
                wait_since.insert(res.clone(), *t);
            } else if let Some(start) = wait_since.remove(res) {
                self.check_wait_covered(res, start, *t, &busy);
            }
        }
        // An interval still open at end-of-trace means the run finished
        // in ECCWAIT — itself a drain bug.
        for (res, start) in wait_since {
            self.fail(
                "eccwait",
                format!(
                    "{res} still in ECCWAIT at end of trace (since {} ns)",
                    start.as_ns()
                ),
            );
        }
    }

    /// Learner telemetry: `recal` spans only ever appear as children of
    /// `retry` spans, and `learner.*` gauges carry finite values.
    fn check_learner(&mut self, records: &[TraceRecord], spans: &BTreeMap<u64, SpanInfo>) {
        for (id, s) in spans {
            if s.name != "recal" {
                continue;
            }
            let parent_is_retry = s
                .parent
                .and_then(|pid| spans.get(&pid))
                .is_some_and(|p| p.name == "retry");
            if !parent_is_retry {
                self.fail(
                    "learner",
                    format!(
                        "recal span {id} at {} ns is not nested in a retry span",
                        s.begin.as_ns()
                    ),
                );
            }
        }
        for r in records {
            if let TraceRecord::Gauge { t, key, value } = r {
                if key.starts_with("learner.") && !value.is_finite() {
                    self.fail(
                        "learner",
                        format!("gauge {key} non-finite ({value}) at {} ns", t.as_ns()),
                    );
                }
            }
        }
    }

    fn check_wait_covered(
        &mut self,
        chan: &str,
        start: SimTime,
        end: SimTime,
        busy: &BTreeMap<String, Vec<(SimTime, SimTime)>>,
    ) {
        if end <= start {
            return;
        }
        let ecc = chan.replace("chan:", "ecc:");
        let intervals = busy.get(&ecc).map(Vec::as_slice).unwrap_or(&[]);
        let mut cursor = start;
        for &(b, e) in intervals {
            if e <= cursor {
                continue;
            }
            if b > cursor {
                break; // gap
            }
            cursor = e;
            if cursor >= end {
                return; // fully covered
            }
        }
        self.fail(
            "eccwait",
            format!(
                "{chan} in ECCWAIT during [{}, {}] ns but {ecc} idle from {} ns",
                start.as_ns(),
                end.as_ns(),
                cursor.as_ns()
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::trace::{JsonlSink, SharedBuf, Tracer};

    fn t(us: u64) -> SimTime {
        SimTime::from_us(us)
    }

    /// Builds records through the real tracer so the tests also cover the
    /// emit → JSONL → parse path.
    fn emit(f: impl FnOnce(&mut Tracer)) -> Vec<TraceRecord> {
        let buf = SharedBuf::new();
        let mut tr = Tracer::to_sink(Box::new(JsonlSink::new(buf.clone())));
        f(&mut tr);
        tr.flush();
        TraceRecord::parse_jsonl(&buf.contents()).unwrap()
    }

    fn rules(v: &[Violation]) -> Vec<&'static str> {
        v.iter().map(|x| x.rule).collect()
    }

    #[test]
    fn empty_trace_is_clean() {
        assert!(TraceChecker::check(&[]).is_empty());
    }

    #[test]
    fn well_formed_request_passes() {
        let recs = emit(|tr| {
            tr.counter(t(0), "requests.admitted", 1);
            let req = tr.span_begin(t(0), "request_read", None, None, Some(0), Some(4096));
            let sense = tr.span_begin(t(0), "sense", Some(req), Some("die:0"), Some(0), None);
            tr.span_end(t(40), sense);
            tr.counter(t(100), "requests.completed", 1);
            tr.counter(t(100), "bytes.completed", 4096);
            tr.span_end(t(100), req);
        });
        assert!(TraceChecker::check(&recs).is_empty());
    }

    #[test]
    fn unended_span_flagged() {
        let recs = emit(|tr| {
            tr.span_begin(t(0), "sense", None, Some("die:0"), None, None);
        });
        assert_eq!(rules(&TraceChecker::check(&recs)), ["span-form"]);
    }

    #[test]
    fn overlapping_resource_spans_flagged() {
        let recs = emit(|tr| {
            let a = tr.span_begin(t(0), "sense", None, Some("die:0"), None, None);
            let b = tr.span_begin(t(10), "sense", None, Some("die:0"), None, None);
            tr.span_end(t(40), a);
            tr.span_end(t(50), b);
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"exclusivity"));
    }

    #[test]
    fn touching_spans_are_legal() {
        let recs = emit(|tr| {
            let a = tr.span_begin(t(0), "sense", None, Some("die:0"), None, None);
            tr.span_end(t(40), a);
            let b = tr.span_begin(t(40), "sense", None, Some("die:0"), None, None);
            tr.span_end(t(80), b);
        });
        assert!(TraceChecker::check(&recs).is_empty());
    }

    #[test]
    fn child_escaping_parent_flagged() {
        let recs = emit(|tr| {
            let p = tr.span_begin(t(10), "group", None, None, None, None);
            let c = tr.span_begin(t(10), "decode", Some(p), Some("ecc:0"), None, None);
            tr.span_end(t(20), p);
            tr.span_end(t(30), c);
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"nesting"));
    }

    #[test]
    fn lost_request_flagged() {
        let recs = emit(|tr| {
            tr.counter(t(0), "requests.admitted", 2);
            let r = tr.span_begin(t(0), "request_read", None, None, Some(0), Some(4096));
            tr.counter(t(9), "requests.completed", 1);
            tr.counter(t(9), "bytes.completed", 4096);
            tr.span_end(t(9), r);
        });
        let v = TraceChecker::check(&recs);
        assert!(rules(&v).iter().all(|r| *r == "request-conservation"));
        assert_eq!(v.len(), 2, "count mismatch and span/admission mismatch");
    }

    #[test]
    fn byte_mismatch_flagged() {
        let recs = emit(|tr| {
            tr.counter(t(0), "requests.admitted", 1);
            let r = tr.span_begin(t(0), "request_read", None, None, Some(0), Some(8192));
            tr.counter(t(9), "requests.completed", 1);
            tr.counter(t(9), "bytes.completed", 4096);
            tr.span_end(t(9), r);
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"byte-conservation"));
    }

    #[test]
    fn eccwait_with_idle_decoder_flagged() {
        let recs = emit(|tr| {
            tr.state(t(0), "chan:0", "ECCWAIT");
            tr.state(t(50), "chan:0", "IDLE");
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"eccwait"));
    }

    #[test]
    fn eccwait_covered_by_back_to_back_decodes_passes() {
        let recs = emit(|tr| {
            let a = tr.span_begin(t(0), "decode", None, Some("ecc:0"), None, None);
            tr.state(t(5), "chan:0", "ECCWAIT");
            tr.span_end(t(20), a);
            let b = tr.span_begin(t(20), "decode", None, Some("ecc:0"), None, None);
            tr.state(t(30), "chan:0", "COR");
            tr.span_end(t(40), b);
        });
        assert!(TraceChecker::check(&recs).is_empty());
    }

    #[test]
    fn recal_outside_retry_flagged() {
        let recs = emit(|tr| {
            let g = tr.span_begin(t(0), "group", None, None, None, None);
            // A recal hung straight off the group span, skipping the
            // retry marker, is a learner-wiring bug.
            let r = tr.span_begin(t(5), "recal", Some(g), None, None, None);
            tr.span_end(t(5), r);
            tr.span_end(t(10), g);
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"learner"));
    }

    #[test]
    fn recal_nested_in_retry_passes() {
        let recs = emit(|tr| {
            let g = tr.span_begin(t(0), "group", None, None, None, None);
            let retry = tr.span_begin(t(5), "retry", Some(g), None, None, None);
            let r = tr.span_begin(t(5), "recal", Some(retry), None, None, None);
            tr.span_end(t(5), r);
            tr.span_end(t(5), retry);
            tr.gauge(t(5), "learner.estimate_error", 0.02);
            tr.span_end(t(10), g);
        });
        assert!(TraceChecker::check(&recs).is_empty());
    }

    #[test]
    fn non_finite_learner_gauge_flagged() {
        // Built directly rather than via the JSONL round-trip: NaN is
        // not representable in JSON, which is exactly why the checker
        // must catch it before a sink chokes on it.
        let recs = vec![
            TraceRecord::Gauge {
                t: t(0),
                key: "learner.estimate_error".to_string(),
                value: f64::NAN,
            },
            // Non-learner gauges are outside this rule's scope.
            TraceRecord::Gauge {
                t: t(1),
                key: "queue.headroom".to_string(),
                value: f64::INFINITY,
            },
        ];
        let v = TraceChecker::check(&recs);
        assert_eq!(rules(&v), ["learner"]);
    }

    #[test]
    fn backwards_time_flagged() {
        let recs = emit(|tr| {
            tr.counter(t(10), "x", 1);
            tr.counter(t(5), "x", 1);
        });
        assert!(rules(&TraceChecker::check(&recs)).contains(&"order"));
    }
}
