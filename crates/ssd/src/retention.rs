//! Per-slot data-age tracking.
//!
//! A read's retry probability is driven by the retention age of its data
//! (Fig. 4). Pages written during the simulated window are seconds old —
//! effectively error-free — while *cold* pages (never updated) carry data
//! programmed up to one refresh interval ago (§IV-B footnote 3: modern
//! SSDs refresh stored data roughly monthly). Cold ages are assigned
//! deterministically per slot so every scheme sees the identical stress
//! pattern.

use std::collections::HashMap;

use rif_events::SimTime;

/// Tracks when each 64-KiB slot (a multi-plane page group) was last
/// written, and assigns pre-trace ages to cold data.
#[derive(Debug, Clone)]
pub struct RetentionTracker {
    refresh_days: f64,
    write_time: HashMap<u64, SimTime>,
    seed: u64,
}

impl RetentionTracker {
    /// Creates a tracker with the given refresh horizon.
    ///
    /// # Panics
    ///
    /// Panics unless `refresh_days` is positive.
    pub fn new(refresh_days: f64, seed: u64) -> Self {
        assert!(refresh_days > 0.0, "refresh horizon must be positive");
        RetentionTracker {
            refresh_days,
            write_time: HashMap::new(),
            seed,
        }
    }

    /// Records a write to `slot` at time `now`.
    pub fn record_write(&mut self, slot: u64, now: SimTime) {
        self.write_time.insert(slot, now);
    }

    /// True when `slot` has never been written during the simulation.
    pub fn is_cold(&self, slot: u64) -> bool {
        !self.write_time.contains_key(&slot)
    }

    /// Retention age in days of `slot`'s data at time `now`.
    ///
    /// Written slots age from their write time (microseconds to seconds —
    /// negligible); cold slots carry a deterministic pseudo-random age
    /// uniform in `[0, refresh_days)`.
    pub fn age_days(&self, slot: u64, now: SimTime) -> f64 {
        match self.write_time.get(&slot) {
            Some(&t) => now.saturating_since(t).as_secs() / 86_400.0,
            None => self.cold_age_days(slot),
        }
    }

    /// The pre-trace age assigned to a cold slot.
    pub fn cold_age_days(&self, slot: u64) -> f64 {
        // SplitMix64-style hash for a uniform, seed-stable draw.
        let mut z = slot
            .wrapping_add(self.seed)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z as f64 / u64::MAX as f64) * self.refresh_days
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rif_events::SimDuration;

    #[test]
    fn cold_ages_are_uniform_over_horizon() {
        let t = RetentionTracker::new(30.0, 7);
        let n = 10_000;
        let ages: Vec<f64> = (0..n).map(|s| t.cold_age_days(s)).collect();
        let mean = ages.iter().sum::<f64>() / n as f64;
        assert!((mean - 15.0).abs() < 0.5, "mean {mean}");
        assert!(ages.iter().all(|&a| (0.0..30.0).contains(&a)));
        // A healthy spread: at least a quarter below 10 and above 20 days.
        let low = ages.iter().filter(|&&a| a < 10.0).count();
        let high = ages.iter().filter(|&&a| a > 20.0).count();
        assert!(low > n as usize / 4 && high > n as usize / 4);
    }

    #[test]
    fn writes_reset_age() {
        let mut t = RetentionTracker::new(30.0, 1);
        let now = SimTime::from_secs(100);
        assert!(t.is_cold(42));
        let cold_age = t.age_days(42, now);
        t.record_write(42, now);
        assert!(!t.is_cold(42));
        let fresh_age = t.age_days(42, now + SimDuration::from_secs(10));
        assert!(fresh_age < 1e-3, "fresh age {fresh_age}");
        assert!(cold_age > fresh_age);
    }

    #[test]
    fn ages_are_deterministic_per_seed() {
        let a = RetentionTracker::new(30.0, 5);
        let b = RetentionTracker::new(30.0, 5);
        let c = RetentionTracker::new(30.0, 6);
        assert_eq!(a.cold_age_days(9), b.cold_age_days(9));
        assert_ne!(a.cold_age_days(9), c.cold_age_days(9));
    }

    #[test]
    fn age_never_negative_for_future_writes() {
        let mut t = RetentionTracker::new(30.0, 1);
        t.record_write(1, SimTime::from_secs(100));
        // Querying "before" the write (clock skew in callers) saturates.
        assert_eq!(t.age_days(1, SimTime::from_secs(50)), 0.0);
    }
}
