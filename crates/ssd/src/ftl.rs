//! Slot-granular flash translation layer.
//!
//! The simulator works on 64-KiB *slots*: one multi-plane page group (the
//! same block/page address across all planes of one die), which is both
//! the unit the paper's root-cause analysis reads (§III-B3) and the unit
//! our traces address. The FTL maps logical slots to physical locations,
//! stripes cold data and writes across dies for parallelism, allocates
//! out-of-place on writes, and reclaims space with greedy garbage
//! collection (relocations are on-die copyback operations whose timing the
//! simulator charges to the owning die).

use std::collections::HashMap;

use rif_flash::geometry::{FlashGeometry, PageKind};

/// A physical slot location: all planes of die `die_linear`, at
/// (`block`, `page`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlotLocation {
    /// Global die index in `[0, channels · dies_per_channel)`.
    pub die_linear: usize,
    /// Block index within each plane.
    pub block: usize,
    /// Page index within the block.
    pub page: usize,
}

impl SlotLocation {
    /// The channel this die sits on.
    pub fn channel(&self, g: &FlashGeometry) -> usize {
        self.die_linear % g.channels
    }

    /// The die index within its channel.
    pub fn die_in_channel(&self, g: &FlashGeometry) -> usize {
        self.die_linear / g.channels
    }

    /// A globally unique block identifier (for process-variation hashing
    /// and read-disturb counting).
    pub fn global_block(&self, g: &FlashGeometry) -> u64 {
        self.die_linear as u64 * g.blocks_per_plane as u64 + self.block as u64
    }

    /// The TLC page kind of this slot (page position within the block).
    pub fn kind(&self) -> PageKind {
        match self.page % 3 {
            0 => PageKind::Lsb,
            1 => PageKind::Csb,
            _ => PageKind::Msb,
        }
    }
}

/// Garbage-collection work the simulator must charge to a die: `relocated`
/// slots were moved by on-die copyback and one block was erased.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GcWork {
    /// The die that performed the collection.
    pub die_linear: usize,
    /// Number of valid slots relocated (each costs tR + tPROG on-die).
    pub relocated: usize,
}

#[derive(Debug, Clone, Default)]
struct BlockLive {
    /// Live page → slot within this block.
    live: HashMap<usize, u64>,
}

#[derive(Debug, Clone)]
struct DieState {
    /// Next (block, page) for cold-data placement, below `write_base`.
    cold_block: usize,
    cold_page: usize,
    /// Active write block and page cursor, at or above `write_base`.
    write_block: usize,
    write_page: usize,
    /// Blocks in the write region that are full and hold live data.
    full_blocks: Vec<usize>,
    /// Erased write-region blocks ready for allocation.
    free_blocks: Vec<usize>,
}

/// The slot-mapped FTL.
///
/// # Example
///
/// ```
/// use rif_ssd::ftl::Ftl;
/// use rif_flash::FlashGeometry;
///
/// let mut ftl = Ftl::new(FlashGeometry::small());
/// let a = ftl.locate_read(7);
/// assert_eq!(ftl.locate_read(7), a); // stable mapping
/// let (b, _gc) = ftl.write(7);
/// assert_ne!(a, b); // out-of-place update
/// assert_eq!(ftl.locate_read(7), b);
/// ```
#[derive(Debug, Clone)]
pub struct Ftl {
    geometry: FlashGeometry,
    mapping: HashMap<u64, SlotLocation>,
    dies: Vec<DieState>,
    /// Live-slot tracking for write-region blocks, keyed by (die, block).
    blocks: HashMap<(usize, usize), BlockLive>,
    /// Per-block read counters (read disturb), keyed by global block id.
    read_counts: HashMap<u64, u64>,
    write_base: usize,
    write_rr: usize,
    relocations: u64,
    erases: u64,
}

impl Ftl {
    /// Builds an FTL over `geometry`, reserving the lower half of each
    /// plane's blocks for cold (pre-trace) data and the upper half for
    /// writes.
    pub fn new(geometry: FlashGeometry) -> Self {
        let n_dies = geometry.channels * geometry.dies_per_channel;
        let write_base = geometry.blocks_per_plane / 2;
        let dies = (0..n_dies)
            .map(|_| DieState {
                cold_block: 0,
                cold_page: 0,
                write_block: write_base,
                write_page: 0,
                full_blocks: Vec::new(),
                free_blocks: (write_base + 1..geometry.blocks_per_plane).collect(),
            })
            .collect();
        Ftl {
            geometry,
            mapping: HashMap::new(),
            dies,
            blocks: HashMap::new(),
            read_counts: HashMap::new(),
            write_base,
            write_rr: 0,
            relocations: 0,
            erases: 0,
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// Total on-die copyback relocations performed by GC so far.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Total block erases performed by GC so far.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Resolves the physical location of `slot` for a read, assigning a
    /// cold-region location on first touch (pre-trace data is assumed
    /// present, striped across dies for parallelism).
    pub fn locate_read(&mut self, slot: u64) -> SlotLocation {
        if let Some(&loc) = self.mapping.get(&slot) {
            return loc;
        }
        let n_dies = self.dies.len();
        let die_linear = (slot % n_dies as u64) as usize;
        let die = &mut self.dies[die_linear];
        let loc = SlotLocation {
            die_linear,
            block: die.cold_block,
            page: die.cold_page,
        };
        die.cold_page += 1;
        if die.cold_page == self.geometry.pages_per_block {
            die.cold_page = 0;
            // Wrap within the cold region: a timing model only needs a
            // stable location per slot, aliasing is harmless.
            die.cold_block = (die.cold_block + 1) % self.write_base.max(1);
        }
        self.mapping.insert(slot, loc);
        loc
    }

    /// Allocates a fresh physical location for a write to `slot`,
    /// invalidating any previous copy. Returns the new location and any
    /// garbage-collection work triggered by the allocation.
    pub fn write(&mut self, slot: u64) -> (SlotLocation, Option<GcWork>) {
        // Invalidate the old copy if it lives in the write region.
        if let Some(old) = self.mapping.get(&slot).copied() {
            if old.block >= self.write_base {
                if let Some(b) = self.blocks.get_mut(&(old.die_linear, old.block)) {
                    b.live.remove(&old.page);
                }
            }
        }

        // Round-robin across dies keeps multi-plane programs balanced.
        let n_dies = self.dies.len();
        let die_linear = self.write_rr % n_dies;
        self.write_rr += 1;

        let mut gc: Option<GcWork> = None;
        // Ensure the active block has room; roll over and collect until a
        // block with free pages is active.
        let mut attempts = 0;
        while self.dies[die_linear].write_page == self.geometry.pages_per_block {
            attempts += 1;
            assert!(
                attempts <= self.dies[die_linear].full_blocks.len() + 2,
                "die {die_linear}: write region has no reclaimable space"
            );
            let full = self.dies[die_linear].write_block;
            self.dies[die_linear].full_blocks.push(full);
            match self.dies[die_linear].free_blocks.pop() {
                Some(b) => {
                    self.dies[die_linear].write_block = b;
                    self.dies[die_linear].write_page = 0;
                }
                None => {
                    let work = self.collect(die_linear);
                    gc = Some(match gc.take() {
                        Some(prev) => GcWork {
                            die_linear,
                            relocated: prev.relocated + work.relocated,
                        },
                        None => work,
                    });
                }
            }
        }

        let die = &mut self.dies[die_linear];
        let loc = SlotLocation {
            die_linear,
            block: die.write_block,
            page: die.write_page,
        };
        die.write_page += 1;
        self.blocks
            .entry((die_linear, loc.block))
            .or_default()
            .live
            .insert(loc.page, slot);
        self.mapping.insert(slot, loc);
        (loc, gc)
    }

    /// Greedy GC on `die_linear`: picks the full block with the fewest
    /// live slots (ties broken by lowest block id, so victim choice never
    /// depends on bookkeeping order), erases it, relocates the survivors
    /// back into it (copyback) in slot order and makes it the active
    /// write block, its cursor starting after the survivors.
    fn collect(&mut self, die_linear: usize) -> GcWork {
        let die = &mut self.dies[die_linear];
        assert!(
            !die.full_blocks.is_empty(),
            "die {die_linear} has no blocks to collect"
        );
        let (idx, &victim) = die
            .full_blocks
            .iter()
            .enumerate()
            .min_by_key(|(_, &b)| {
                (
                    self.blocks
                        .get(&(die_linear, b))
                        .map(|bl| bl.live.len())
                        .unwrap_or(0),
                    b,
                )
            })
            .expect("non-empty");
        die.full_blocks.swap_remove(idx);

        let mut survivors: Vec<u64> = self
            .blocks
            .remove(&(die_linear, victim))
            .map(|b| b.live.into_values().collect())
            .unwrap_or_default();
        // Survivors come out of a HashMap: sort before reassigning pages
        // so the relocated layout is identical across processes.
        survivors.sort_unstable();
        let relocated = survivors.len();
        self.relocations += relocated as u64;
        self.erases += 1;

        // Rewrite survivors into the erased victim block itself.
        let mut live = HashMap::new();
        for (page, slot) in survivors.into_iter().enumerate() {
            let loc = SlotLocation {
                die_linear,
                block: victim,
                page,
            };
            self.mapping.insert(slot, loc);
            live.insert(page, slot);
        }
        let n_live = live.len();
        if n_live > 0 {
            self.blocks.insert((die_linear, victim), BlockLive { live });
        }
        let die = &mut self.dies[die_linear];
        die.write_block = victim;
        die.write_page = n_live;
        GcWork {
            die_linear,
            relocated,
        }
    }

    /// Bumps and returns the read-disturb counter of the block holding
    /// `loc`.
    pub fn note_read(&mut self, loc: SlotLocation) -> u64 {
        let id = loc.global_block(&self.geometry);
        let c = self.read_counts.entry(id).or_insert(0);
        *c += 1;
        *c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_geometry() -> FlashGeometry {
        FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 4,
            blocks_per_plane: 8,
            pages_per_block: 4,
            page_bytes: 16 * 1024,
        }
    }

    #[test]
    fn gc_layout_is_identical_across_ftl_instances() {
        // Every std HashMap hashes with its own random keys, so any GC
        // decision that leaked iteration order would already differ
        // between two instances in one process (and between the threads
        // of a parallel sweep). Pin that victim choice and survivor
        // layout depend only on the operation sequence.
        let run = || {
            let mut ftl = Ftl::new(tiny_geometry());
            // Overwrite a 24-slot working set in a 32-slot write region
            // in an irregular (hashed) order: victims carry live
            // survivors and candidates tie on live count.
            for i in 0..400u64 {
                ftl.write((i.wrapping_mul(0x9E37_79B9) >> 7) % 24);
            }
            let locs: Vec<SlotLocation> = (0..24u64).map(|s| ftl.locate_read(s)).collect();
            (locs, ftl.relocations(), ftl.erases())
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "GC outcome depends on hash iteration order");
        assert!(a.1 > 0, "workload never triggered GC");
    }

    #[test]
    fn cold_mapping_is_stable_and_striped() {
        let mut ftl = Ftl::new(FlashGeometry::small());
        let a = ftl.locate_read(0);
        let b = ftl.locate_read(1);
        let c = ftl.locate_read(0);
        assert_eq!(a, c);
        assert_ne!(a.die_linear, b.die_linear, "consecutive slots share a die");
    }

    #[test]
    fn cold_mapping_fills_pages_sequentially() {
        let mut ftl = Ftl::new(FlashGeometry::small());
        let n_dies = 32;
        let a = ftl.locate_read(0);
        let b = ftl.locate_read(n_dies); // same die, next page
        assert_eq!(a.die_linear, b.die_linear);
        assert_eq!(b.page, a.page + 1);
    }

    #[test]
    fn page_kinds_cycle_within_block() {
        let loc = |page| SlotLocation {
            die_linear: 0,
            block: 0,
            page,
        };
        assert_eq!(loc(0).kind(), PageKind::Lsb);
        assert_eq!(loc(1).kind(), PageKind::Csb);
        assert_eq!(loc(2).kind(), PageKind::Msb);
        assert_eq!(loc(3).kind(), PageKind::Lsb);
    }

    #[test]
    fn writes_are_out_of_place_and_remap() {
        let mut ftl = Ftl::new(FlashGeometry::small());
        let cold = ftl.locate_read(5);
        let (w1, _) = ftl.write(5);
        let (w2, _) = ftl.write(5);
        assert_ne!(cold, w1);
        assert_ne!(w1, w2);
        assert_eq!(ftl.locate_read(5), w2);
        assert!(w1.block >= FlashGeometry::small().blocks_per_plane / 2);
    }

    #[test]
    fn gc_triggers_when_write_region_exhausts() {
        let mut ftl = Ftl::new(tiny_geometry());
        // Write region per die: blocks 4..8 (4 blocks x 4 pages = 16 slots
        // capacity). Overwrite a small working set repeatedly so blocks
        // fill with dead pages and GC can reclaim nearly-empty victims.
        let mut gc_seen = false;
        for round in 0..40 {
            for slot in 0..4u64 {
                let (_, gc) = ftl.write(slot);
                if let Some(work) = gc {
                    gc_seen = true;
                    assert!(work.relocated <= 4, "round {round}: {work:?}");
                }
            }
        }
        assert!(gc_seen, "GC never triggered");
        assert!(ftl.erases() > 0);
        // Mapping still resolves after collections.
        for slot in 0..4u64 {
            let loc = ftl.locate_read(slot);
            assert!(loc.block >= 4);
        }
    }

    #[test]
    fn gc_prefers_emptier_victims() {
        let mut ftl = Ftl::new(tiny_geometry());
        // Fill with distinct slots (all live), then overwrite one block's
        // worth to create dead pages; GC must relocate few slots.
        for slot in 0..24u64 {
            ftl.write(slot);
        }
        let before = ftl.relocations();
        for _ in 0..30 {
            ftl.write(1000);
        }
        let per_gc = (ftl.relocations() - before) as f64 / ftl.erases().max(1) as f64;
        assert!(per_gc < 4.0, "GC relocating too much: {per_gc}");
    }

    #[test]
    fn read_counters_accumulate_per_block() {
        let mut ftl = Ftl::new(FlashGeometry::small());
        let loc = ftl.locate_read(3);
        assert_eq!(ftl.note_read(loc), 1);
        assert_eq!(ftl.note_read(loc), 2);
        let other = ftl.locate_read(4);
        assert_eq!(ftl.note_read(other), 1);
    }

    #[test]
    fn cold_region_wraps_instead_of_overflowing() {
        let mut ftl = Ftl::new(tiny_geometry());
        // Cold capacity per die is 4 blocks x 4 pages = 16 slots; touch
        // far more and require stable, in-range locations.
        let locs: Vec<SlotLocation> = (0..200u64).map(|s| ftl.locate_read(s)).collect();
        for l in &locs {
            assert!(l.block < 4, "cold slot escaped its region: {l:?}");
        }
        assert_eq!(ftl.locate_read(150), locs[150]);
    }
}
