//! Hybrid SLC/QLC flash subsystem: cell-mode regions, reliability-aware
//! migration, and the background-traffic work model (DESIGN §14).
//!
//! Modern high-density SSDs run part of the array as an SLC-mode write
//! cache in front of QLC capacity blocks. Writes land in SLC (huge V_TH
//! margin, effectively error-free); a migration policy later drains the
//! cache to QLC via on-die copyback. RARO-style *reliability-aware*
//! migration prefers cold, long-unwritten data and accounts for the
//! destination's RBER before converting. All of that traffic — SLC→QLC
//! migration, garbage collection, and periodic refresh rewrites — becomes
//! real die work that contends with foreground reads, which is exactly
//! the regime where early retry (RiF) pays most: retries are costlier
//! (QLC's 15 read levels, higher RBER) and the dies are busier.
//!
//! [`HybridFtl`] owns the slot mapping and region bookkeeping;
//! [`AmpTable`] converts the calibrated TLC error model to other cell
//! modes via precomputed RBER amplification ratios (the same
//! QLC/TLC-ratio methodology as the `ablation_qlc` study); the
//! background scheduler half lives in the simulator, driven by
//! [`BgConfig`].

use std::collections::{HashMap, HashSet, VecDeque};

use rif_events::SimDuration;
use rif_flash::geometry::FlashGeometry;
use rif_flash::mlc::MlcModel;
use rif_flash::vth::OperatingPoint;

use crate::ftl::{GcWork, SlotLocation};

/// Cell mode of a flash region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellMode {
    /// 1 bit/cell cache mode (SLC-programmed TLC/QLC blocks).
    Slc,
    /// 3 bits/cell — the paper's baseline device.
    Tlc,
    /// 4 bits/cell, 15 read levels.
    Qlc,
}

impl CellMode {
    /// Short label for tables and JSON.
    pub fn label(&self) -> &'static str {
        match self {
            CellMode::Slc => "slc",
            CellMode::Tlc => "tlc",
            CellMode::Qlc => "qlc",
        }
    }

    /// The V_TH model of this mode.
    pub fn model(&self) -> MlcModel {
        match self {
            CellMode::Slc => MlcModel::slc_like(),
            CellMode::Tlc => MlcModel::tlc(),
            CellMode::Qlc => MlcModel::qlc(),
        }
    }
}

/// Kind of a background die operation (trace span name / metric label).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BgKind {
    /// Garbage-collection relocation + erase.
    Gc,
    /// SLC→QLC cache drain (on-die copyback).
    Migrate,
    /// Retention refresh rewrite.
    Refresh,
}

impl BgKind {
    /// The trace span name emitted while a die executes this work.
    pub fn span_name(&self) -> &'static str {
        match self {
            BgKind::Gc => "gc",
            BgKind::Migrate => "migrate",
            BgKind::Refresh => "refresh",
        }
    }
}

/// How the cache-drain policy picks and gates migrations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MigrationPolicy {
    /// Oldest-written slots first, unconditionally.
    Fifo,
    /// RARO-style: oldest (coldest) slots first, but background drain is
    /// deferred while the destination QLC RBER — evaluated at half the
    /// refresh interval, the expected residence before the next rewrite —
    /// exceeds `dest_rber_margin` × the ECC correction capability.
    /// Write-pressure evictions ignore the gate (the cache must not
    /// overflow).
    ReliabilityAware {
        /// Destination-RBER budget as a multiple of the ECC capability.
        dest_rber_margin: f64,
    },
}

/// Background-traffic scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BgConfig {
    /// Scheduler period.
    pub tick: SimDuration,
    /// Maximum slots migrated per tick.
    pub migrate_batch: usize,
    /// Cache occupancy that starts a background drain.
    pub high_watermark: f64,
    /// Occupancy at which a running drain stops.
    pub low_watermark: f64,
    /// Refresh interval in retention days (0 disables refresh traffic).
    pub refresh_interval_days: f64,
    /// Slots whose age is examined per tick by the refresh scan.
    pub refresh_scan_batch: usize,
    /// Foreground-preempts policy: arriving read senses jump ahead of
    /// queued background die commands (they never preempt other reads or
    /// host programs).
    pub fg_priority: bool,
}

impl Default for BgConfig {
    fn default() -> Self {
        BgConfig {
            tick: SimDuration::from_us(200),
            migrate_batch: 32,
            high_watermark: 0.5,
            low_watermark: 0.3,
            refresh_interval_days: 30.0,
            refresh_scan_batch: 64,
            fg_priority: true,
        }
    }
}

/// Full hybrid-subsystem configuration, carried by
/// [`crate::SsdConfig::hybrid`]. `None` there keeps the device a pure
/// TLC SSD, byte-identical to the pre-hybrid simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct HybridConfig {
    /// Fraction of each die's write region run in SLC mode (0 disables
    /// the cache: writes land directly in capacity blocks).
    pub cache_fraction: f64,
    /// Cell mode of the capacity (non-cache) blocks.
    pub capacity_mode: CellMode,
    /// Cache-drain policy.
    pub migration: MigrationPolicy,
    /// Background scheduler knobs.
    pub bg: BgConfig,
}

impl HybridConfig {
    /// A pure QLC device: no SLC cache, every block 4 bits/cell.
    pub fn qlc() -> Self {
        HybridConfig {
            cache_fraction: 0.0,
            capacity_mode: CellMode::Qlc,
            migration: MigrationPolicy::Fifo,
            bg: BgConfig::default(),
        }
    }

    /// The default hybrid device: a quarter of the write region as SLC
    /// cache in front of QLC capacity, drained reliability-aware.
    pub fn slc_qlc() -> Self {
        HybridConfig {
            cache_fraction: 0.25,
            capacity_mode: CellMode::Qlc,
            migration: MigrationPolicy::ReliabilityAware {
                dest_rber_margin: 2.0,
            },
            bg: BgConfig::default(),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range fractions, an SLC capacity mode, inverted
    /// watermarks, or degenerate scheduler knobs.
    pub fn validate(&self) {
        assert!(
            (0.0..=0.9).contains(&self.cache_fraction),
            "cache fraction {} outside [0, 0.9]",
            self.cache_fraction
        );
        assert!(
            self.capacity_mode != CellMode::Slc,
            "capacity region cannot run in SLC mode"
        );
        assert!(
            (0.0..=1.0).contains(&self.high_watermark())
                && (0.0..=1.0).contains(&self.bg.low_watermark)
                && self.bg.low_watermark <= self.high_watermark(),
            "watermarks must satisfy 0 <= low <= high <= 1"
        );
        assert!(!self.bg.tick.is_zero(), "bg tick must be positive");
        assert!(self.bg.migrate_batch > 0, "migrate batch must be positive");
        assert!(
            self.bg.refresh_interval_days >= 0.0,
            "refresh interval must be non-negative"
        );
        if let MigrationPolicy::ReliabilityAware { dest_rber_margin } = self.migration {
            assert!(dest_rber_margin > 0.0, "dest RBER margin must be positive");
        }
    }

    fn high_watermark(&self) -> f64 {
        self.bg.high_watermark
    }
}

/// One slot moved from the SLC cache to a capacity block (an on-die
/// copyback the simulator charges to the owning die).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationWork {
    /// The migrated slot.
    pub slot: u64,
    /// The die that performs the copyback.
    pub die_linear: usize,
    /// Invalidated SLC location.
    pub from: SlotLocation,
    /// New capacity-region location.
    pub to: SlotLocation,
    /// Capacity-region GC triggered by the destination allocation.
    pub gc: Option<GcWork>,
}

/// Result of a hybrid write: the new location plus any background work
/// the allocation forced (GC, cache-overflow evictions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOutcome {
    /// Where the slot now lives.
    pub loc: SlotLocation,
    /// GC triggered by the allocation itself.
    pub gc: Option<GcWork>,
    /// Cache-overflow evictions performed to make room (forced
    /// migrations; empty unless the SLC region was full of live data).
    pub evicted: Vec<MigrationWork>,
}

#[derive(Debug, Clone, Default)]
struct BlockLive {
    live: HashMap<usize, u64>,
}

/// A per-die allocation region: an active block with a page cursor, full
/// blocks awaiting GC, and erased free blocks.
#[derive(Debug, Clone)]
struct Region {
    active: usize,
    page: usize,
    full: Vec<usize>,
    free: Vec<usize>,
}

impl Region {
    fn new(start: usize, end: usize) -> Self {
        Region {
            active: start,
            page: 0,
            full: Vec::new(),
            free: (start + 1..end).collect(),
        }
    }
}

#[derive(Debug, Clone)]
struct HybridDie {
    cold_block: usize,
    cold_page: usize,
    /// SLC cache region (`None` when `cache_fraction == 0`).
    slc: Option<Region>,
    /// Capacity-mode write/migration-destination region.
    cap: Region,
    /// Live slots currently resident in this die's SLC region.
    slc_live: usize,
    /// Cache residents in write order: `(seq, slot)`; entries go stale
    /// when a slot is rewritten or migrated and are skipped lazily.
    fifo: VecDeque<(u64, u64)>,
}

/// The hybrid FTL: cold QLC region, capacity write region, and an
/// optional SLC cache region per die, with SLC→QLC migration.
///
/// # Example
///
/// ```
/// use rif_ssd::hybrid::HybridFtl;
/// use rif_flash::FlashGeometry;
///
/// let mut ftl = HybridFtl::new(FlashGeometry::small(), 0.25);
/// let out = ftl.write(7);
/// assert!(ftl.is_cached(7));
/// let w = ftl.migrate(7).expect("cache resident migrates");
/// assert_eq!(w.slot, 7);
/// assert!(!ftl.is_cached(7));
/// assert_eq!(ftl.locate_read(7), w.to);
/// assert_ne!(out.loc, w.to);
/// ```
#[derive(Debug, Clone)]
pub struct HybridFtl {
    geometry: FlashGeometry,
    mapping: HashMap<u64, SlotLocation>,
    dies: Vec<HybridDie>,
    blocks: HashMap<(usize, usize), BlockLive>,
    read_counts: HashMap<u64, u64>,
    /// Slots ever touched, in first-touch order (the refresh scan's
    /// deterministic iteration universe).
    touched: Vec<u64>,
    /// Cache membership: slot → its live fifo sequence number.
    cached: HashMap<u64, u64>,
    write_base: usize,
    /// First SLC-mode block index (== `blocks_per_plane` when no cache).
    slc_base: usize,
    write_rr: usize,
    seq: u64,
    migrations: u64,
    relocations: u64,
    erases: u64,
}

impl HybridFtl {
    /// Builds a hybrid FTL: the lower half of each plane's blocks holds
    /// cold (pre-trace) capacity data, and `cache_fraction` of the write
    /// half runs in SLC mode (at least one block when the fraction is
    /// positive).
    ///
    /// # Panics
    ///
    /// Panics unless `cache_fraction` is in `[0, 0.9]` and the geometry
    /// leaves at least two capacity write blocks per die.
    pub fn new(geometry: FlashGeometry, cache_fraction: f64) -> Self {
        assert!(
            (0.0..=0.9).contains(&cache_fraction),
            "cache fraction {cache_fraction} outside [0, 0.9]"
        );
        let n_dies = geometry.channels * geometry.dies_per_channel;
        let write_base = geometry.blocks_per_plane / 2;
        let write_blocks = geometry.blocks_per_plane - write_base;
        let slc_blocks = if cache_fraction == 0.0 {
            0
        } else {
            ((cache_fraction * write_blocks as f64).round() as usize).clamp(1, write_blocks - 2)
        };
        let slc_base = geometry.blocks_per_plane - slc_blocks;
        assert!(
            slc_base - write_base >= 2,
            "need at least two capacity write blocks per die"
        );
        let dies = (0..n_dies)
            .map(|_| HybridDie {
                cold_block: 0,
                cold_page: 0,
                slc: (slc_blocks > 0).then(|| Region::new(slc_base, geometry.blocks_per_plane)),
                cap: Region::new(write_base, slc_base),
                slc_live: 0,
                fifo: VecDeque::new(),
            })
            .collect();
        HybridFtl {
            geometry,
            mapping: HashMap::new(),
            dies,
            blocks: HashMap::new(),
            read_counts: HashMap::new(),
            touched: Vec::new(),
            cached: HashMap::new(),
            write_base,
            slc_base,
            write_rr: 0,
            seq: 0,
            migrations: 0,
            relocations: 0,
            erases: 0,
        }
    }

    /// The geometry this FTL manages.
    pub fn geometry(&self) -> &FlashGeometry {
        &self.geometry
    }

    /// SLC cache blocks per die.
    pub fn slc_blocks_per_die(&self) -> usize {
        self.geometry.blocks_per_plane - self.slc_base
    }

    /// The cell mode of a physical location.
    pub fn mode_of(&self, loc: SlotLocation, capacity_mode: CellMode) -> CellMode {
        if loc.block >= self.slc_base {
            CellMode::Slc
        } else {
            capacity_mode
        }
    }

    /// True when `slot`'s current copy lives in the SLC cache.
    pub fn is_cached(&self, slot: u64) -> bool {
        self.cached.contains_key(&slot)
    }

    /// Live slots resident in the cache.
    pub fn cached_slots(&self) -> usize {
        self.cached.len()
    }

    /// Total cache capacity in slots.
    pub fn cache_capacity_slots(&self) -> usize {
        self.dies.len() * self.slc_blocks_per_die() * self.geometry.pages_per_block
    }

    /// Cache occupancy in `[0, 1]` (0 when there is no cache).
    pub fn cache_occupancy(&self) -> f64 {
        let cap = self.cache_capacity_slots();
        if cap == 0 {
            0.0
        } else {
            self.cached.len() as f64 / cap as f64
        }
    }

    /// SLC→QLC migrations performed.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// GC copyback relocations performed.
    pub fn relocations(&self) -> u64 {
        self.relocations
    }

    /// Block erases performed.
    pub fn erases(&self) -> u64 {
        self.erases
    }

    /// Slots ever touched, in first-touch order (deterministic across
    /// runs — the refresh scan iterates this).
    pub fn touched(&self) -> &[u64] {
        &self.touched
    }

    /// Resolves `slot` for a read, assigning a cold capacity-region
    /// location on first touch.
    pub fn locate_read(&mut self, slot: u64) -> SlotLocation {
        if let Some(&loc) = self.mapping.get(&slot) {
            return loc;
        }
        let n_dies = self.dies.len();
        let die_linear = (slot % n_dies as u64) as usize;
        let die = &mut self.dies[die_linear];
        let loc = SlotLocation {
            die_linear,
            block: die.cold_block,
            page: die.cold_page,
        };
        die.cold_page += 1;
        if die.cold_page == self.geometry.pages_per_block {
            die.cold_page = 0;
            die.cold_block = (die.cold_block + 1) % self.write_base.max(1);
        }
        self.mapping.insert(slot, loc);
        self.touched.push(slot);
        loc
    }

    /// Bumps and returns the read-disturb counter of `loc`'s block.
    pub fn note_read(&mut self, loc: SlotLocation) -> u64 {
        let id = loc.global_block(&self.geometry);
        let c = self.read_counts.entry(id).or_insert(0);
        *c += 1;
        *c
    }

    /// Writes `slot`: the new copy lands in the SLC cache (or directly in
    /// the capacity region without one), invalidating any previous copy.
    /// A full cache forcibly evicts its oldest residents first.
    pub fn write(&mut self, slot: u64) -> WriteOutcome {
        if let Some(old) = self.mapping.get(&slot).copied() {
            self.invalidate(old);
            self.cached.remove(&slot);
        } else {
            self.touched.push(slot);
        }
        let n_dies = self.dies.len();
        let die_linear = self.write_rr % n_dies;
        self.write_rr += 1;

        let mut evicted = Vec::new();
        let (loc, gc) = if self.dies[die_linear].slc.is_some() {
            // Cache-overflow safety valve: when this die's SLC region is
            // entirely live, evict its oldest residents to capacity.
            let die_cap = self.slc_blocks_per_die() * self.geometry.pages_per_block;
            while self.dies[die_linear].slc_live >= die_cap {
                let victim = self
                    .oldest_cached_on_die(die_linear)
                    .expect("a full cache has residents");
                let w = self.migrate(victim).expect("resident migrates");
                evicted.push(w);
            }
            let (loc, gc) = self.alloc(die_linear, true);
            self.seq += 1;
            self.cached.insert(slot, self.seq);
            self.dies[die_linear].fifo.push_back((self.seq, slot));
            self.dies[die_linear].slc_live += 1;
            (loc, gc)
        } else {
            self.alloc(die_linear, false)
        };
        self.blocks
            .entry((die_linear, loc.block))
            .or_default()
            .live
            .insert(loc.page, slot);
        self.mapping.insert(slot, loc);
        WriteOutcome { loc, gc, evicted }
    }

    /// Up to `batch` migration candidates, globally oldest-written first
    /// (the cold end of every die's cache). Stale fifo entries are
    /// garbage-collected as a side effect.
    pub fn migration_candidates(&mut self, batch: usize) -> Vec<u64> {
        let mut found: Vec<(u64, u64)> = Vec::new();
        for die in &mut self.dies {
            let mut taken = 0;
            let mut i = 0;
            while i < die.fifo.len() && taken < batch {
                let (seq, slot) = die.fifo[i];
                if self.cached.get(&slot) == Some(&seq) {
                    found.push((seq, slot));
                    taken += 1;
                    i += 1;
                } else if i == 0 {
                    die.fifo.pop_front();
                } else {
                    i += 1;
                }
            }
        }
        found.sort_unstable();
        found.truncate(batch);
        found.into_iter().map(|(_, s)| s).collect()
    }

    /// Migrates a cache-resident `slot` to a capacity block on the same
    /// die (on-die copyback). Returns `None` when the slot is not in the
    /// cache (already migrated, rewritten, or never written).
    pub fn migrate(&mut self, slot: u64) -> Option<MigrationWork> {
        self.cached.remove(&slot)?;
        let from = *self.mapping.get(&slot).expect("cached slot is mapped");
        debug_assert!(from.block >= self.slc_base, "cached slot outside SLC");
        self.invalidate(from);
        let die_linear = from.die_linear;
        let (to, gc) = self.alloc(die_linear, false);
        self.blocks
            .entry((die_linear, to.block))
            .or_default()
            .live
            .insert(to.page, slot);
        self.mapping.insert(slot, to);
        self.migrations += 1;
        Some(MigrationWork {
            slot,
            die_linear,
            from,
            to,
            gc,
        })
    }

    /// Removes the live entry for an old copy and releases a fully dead,
    /// non-active SLC block back to the free list (background erase).
    fn invalidate(&mut self, old: SlotLocation) {
        if old.block < self.write_base {
            return; // cold region copies are never reclaimed
        }
        let key = (old.die_linear, old.block);
        let emptied = match self.blocks.get_mut(&key) {
            Some(b) => {
                b.live.remove(&old.page);
                b.live.is_empty()
            }
            None => false,
        };
        let in_slc = old.block >= self.slc_base;
        if in_slc {
            self.dies[old.die_linear].slc_live -= 1;
        }
        if emptied && in_slc {
            let region = self.dies[old.die_linear]
                .slc
                .as_mut()
                .expect("SLC block implies a cache region");
            if let Some(i) = region.full.iter().position(|&b| b == old.block) {
                region.full.swap_remove(i);
                region.free.push(old.block);
                self.blocks.remove(&key);
                self.erases += 1;
            }
        }
    }

    /// The oldest live cache resident on `die_linear`.
    fn oldest_cached_on_die(&mut self, die_linear: usize) -> Option<u64> {
        let die = &mut self.dies[die_linear];
        while let Some(&(seq, slot)) = die.fifo.front() {
            if self.cached.get(&slot) == Some(&seq) {
                return Some(slot);
            }
            die.fifo.pop_front();
        }
        None
    }

    /// Allocates the next page in a die's SLC or capacity region, running
    /// region-local greedy GC when the free list runs dry.
    fn alloc(&mut self, die_linear: usize, slc: bool) -> (SlotLocation, Option<GcWork>) {
        let mut gc: Option<GcWork> = None;
        let mut attempts = 0;
        let pages_per_block = self.geometry.pages_per_block;
        loop {
            let region = self.region_mut(die_linear, slc);
            if region.page < pages_per_block {
                let loc = SlotLocation {
                    die_linear,
                    block: region.active,
                    page: region.page,
                };
                region.page += 1;
                return (loc, gc);
            }
            attempts += 1;
            let full_len = self.region_mut(die_linear, slc).full.len();
            assert!(
                attempts <= full_len + 2,
                "die {die_linear}: {} region has no reclaimable space",
                if slc { "slc" } else { "capacity" }
            );
            let active = self.region_mut(die_linear, slc).active;
            self.region_mut(die_linear, slc).full.push(active);
            match self.region_mut(die_linear, slc).free.pop() {
                Some(b) => {
                    let region = self.region_mut(die_linear, slc);
                    region.active = b;
                    region.page = 0;
                }
                None => {
                    let work = self.collect(die_linear, slc);
                    gc = Some(match gc.take() {
                        Some(prev) => GcWork {
                            die_linear,
                            relocated: prev.relocated + work.relocated,
                        },
                        None => work,
                    });
                }
            }
        }
    }

    fn region_mut(&mut self, die_linear: usize, slc: bool) -> &mut Region {
        let die = &mut self.dies[die_linear];
        if slc {
            die.slc.as_mut().expect("SLC allocation without a cache")
        } else {
            &mut die.cap
        }
    }

    /// Region-local greedy GC: the fullest-dead block (ties broken by
    /// block id) is erased and its survivors relocated back into it in
    /// slot order — fully deterministic.
    fn collect(&mut self, die_linear: usize, slc: bool) -> GcWork {
        let victim = {
            let blocks = &self.blocks;
            let region = {
                let die = &self.dies[die_linear];
                if slc {
                    die.slc.as_ref().expect("SLC GC without a cache")
                } else {
                    &die.cap
                }
            };
            assert!(
                !region.full.is_empty(),
                "die {die_linear}: nothing to collect"
            );
            *region
                .full
                .iter()
                .min_by_key(|&&b| {
                    (
                        blocks
                            .get(&(die_linear, b))
                            .map(|bl| bl.live.len())
                            .unwrap_or(0),
                        b,
                    )
                })
                .expect("non-empty")
        };
        let region = self.region_mut(die_linear, slc);
        let i = region
            .full
            .iter()
            .position(|&b| b == victim)
            .expect("victim is full");
        region.full.swap_remove(i);

        let mut survivors: Vec<u64> = self
            .blocks
            .remove(&(die_linear, victim))
            .map(|b| b.live.into_values().collect())
            .unwrap_or_default();
        survivors.sort_unstable();
        let relocated = survivors.len();
        self.relocations += relocated as u64;
        self.erases += 1;

        let mut live = HashMap::new();
        for (page, slot) in survivors.into_iter().enumerate() {
            let loc = SlotLocation {
                die_linear,
                block: victim,
                page,
            };
            self.mapping.insert(slot, loc);
            live.insert(page, slot);
        }
        let n_live = live.len();
        if n_live > 0 {
            self.blocks.insert((die_linear, victim), BlockLive { live });
        }
        let region = self.region_mut(die_linear, slc);
        region.active = victim;
        region.page = n_live;
        GcWork {
            die_linear,
            relocated,
        }
    }

    /// Audits every internal invariant; the property suite calls this
    /// after arbitrary operation interleavings.
    ///
    /// Checks: mapping totality and bounds, no two slots sharing a
    /// physical location, block live-tables consistent with the mapping,
    /// cache membership exactly the live SLC population, and occupancy
    /// within capacity.
    pub fn check_integrity(&self) -> Result<(), String> {
        let mut seen: HashSet<(usize, usize, usize)> = HashSet::new();
        for (&slot, &loc) in &self.mapping {
            if loc.die_linear >= self.dies.len()
                || loc.block >= self.geometry.blocks_per_plane
                || loc.page >= self.geometry.pages_per_block
            {
                return Err(format!("slot {slot} mapped out of bounds: {loc:?}"));
            }
            if !seen.insert((loc.die_linear, loc.block, loc.page)) {
                return Err(format!("location {loc:?} holds two live slots"));
            }
            if loc.block >= self.write_base {
                let ok = self
                    .blocks
                    .get(&(loc.die_linear, loc.block))
                    .and_then(|b| b.live.get(&loc.page))
                    == Some(&slot);
                if !ok {
                    return Err(format!("slot {slot} missing from live table at {loc:?}"));
                }
            }
            let in_slc = loc.block >= self.slc_base;
            if in_slc != self.cached.contains_key(&slot) {
                return Err(format!(
                    "slot {slot} cache membership disagrees with location {loc:?}"
                ));
            }
        }
        for (&(die, block), bl) in &self.blocks {
            for (&page, &slot) in &bl.live {
                let loc = SlotLocation {
                    die_linear: die,
                    block,
                    page,
                };
                if self.mapping.get(&slot) != Some(&loc) {
                    return Err(format!("stale live entry {loc:?} for slot {slot}"));
                }
            }
        }
        let slc_live_total: usize = self.dies.iter().map(|d| d.slc_live).sum();
        if slc_live_total != self.cached.len() {
            return Err(format!(
                "slc_live total {slc_live_total} != cached {}",
                self.cached.len()
            ));
        }
        if self.cached.len() > self.cache_capacity_slots() {
            return Err(format!(
                "cache holds {} slots, capacity {}",
                self.cached.len(),
                self.cache_capacity_slots()
            ));
        }
        Ok(())
    }
}

/// Precomputed RBER amplification of non-TLC cell modes relative to the
/// calibrated TLC error model, tabulated over retention age at a fixed
/// wear stage. The simulator multiplies every TLC-model RBER by the
/// mode's factor — the same QLC/TLC-ratio methodology the `ablation_qlc`
/// study reports, made cheap and deterministic with a day-granular table.
#[derive(Debug, Clone)]
pub struct AmpTable {
    /// `qlc[d]` = QLC/TLC page-averaged RBER ratio at `d` retention days.
    qlc: Vec<f64>,
    /// `slc[d]` = SLC/TLC ratio at `d` days.
    slc: Vec<f64>,
}

impl AmpTable {
    /// Builds the table for `pe_cycles`, covering ages up to
    /// `horizon_days` (clamped lookups beyond).
    pub fn build(pe_cycles: u32, horizon_days: f64) -> Self {
        let days = (horizon_days.max(1.0).ceil() as usize).max(8) + 1;
        let tlc = CellMode::Tlc.model();
        let qlc_m = CellMode::Qlc.model();
        let slc_m = CellMode::Slc.model();
        let mut qlc = Vec::with_capacity(days);
        let mut slc = Vec::with_capacity(days);
        for d in 0..days {
            let op = OperatingPoint::new(pe_cycles, d as f64);
            let t = tlc.rber_avg(op, 1.0).max(1e-12);
            qlc.push(qlc_m.rber_avg(op, 1.0) / t);
            slc.push(slc_m.rber_avg(op, 1.0) / t);
        }
        AmpTable { qlc, slc }
    }

    /// The amplification factor of `mode` at `age_days` (linear
    /// interpolation, clamped to the tabulated range). TLC is exactly 1.
    pub fn factor(&self, mode: CellMode, age_days: f64) -> f64 {
        let table = match mode {
            CellMode::Tlc => return 1.0,
            CellMode::Qlc => &self.qlc,
            CellMode::Slc => &self.slc,
        };
        let a = age_days.max(0.0);
        let i = a.floor() as usize;
        if i + 1 >= table.len() {
            return table[table.len() - 1];
        }
        let frac = a - i as f64;
        table[i] * (1.0 - frac) + table[i + 1] * frac
    }
}

/// Hard ceiling applied to amplified RBERs: past this the decode model's
/// behaviour is saturated anyway, and capping keeps every downstream
/// probability well-defined.
pub const AMPLIFIED_RBER_CAP: f64 = 0.4;

/// Floor applied to amplified RBERs. The SLC V_TH model's state margin is
/// wide enough that its raw RBER underflows to exactly 0, and a zero RBER
/// poisons ratio-based scheme math downstream (`0 * (0/0)^w` is NaN in
/// SWR+'s V_REF tracking). One error per 10¹² bits is "error-free" to
/// every consumer while keeping the arithmetic finite.
pub const AMPLIFIED_RBER_FLOOR: f64 = 1e-12;

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FlashGeometry {
        FlashGeometry::small()
    }

    #[test]
    fn config_presets_validate() {
        HybridConfig::qlc().validate();
        HybridConfig::slc_qlc().validate();
    }

    #[test]
    #[should_panic(expected = "cache fraction")]
    fn config_rejects_oversized_cache() {
        let mut c = HybridConfig::slc_qlc();
        c.cache_fraction = 0.95;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "SLC mode")]
    fn config_rejects_slc_capacity() {
        let mut c = HybridConfig::qlc();
        c.capacity_mode = CellMode::Slc;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "watermarks")]
    fn config_rejects_inverted_watermarks() {
        let mut c = HybridConfig::slc_qlc();
        c.bg.low_watermark = 0.8;
        c.bg.high_watermark = 0.5;
        c.validate();
    }

    #[test]
    fn writes_land_in_slc_and_migrate_to_capacity() {
        let mut ftl = HybridFtl::new(small(), 0.25);
        let out = ftl.write(42);
        assert_eq!(ftl.mode_of(out.loc, CellMode::Qlc), CellMode::Slc);
        assert!(ftl.is_cached(42));
        let w = ftl.migrate(42).expect("migrates");
        assert_eq!(w.die_linear, w.from.die_linear);
        assert_eq!(w.die_linear, w.to.die_linear, "copyback stays on-die");
        assert_eq!(ftl.mode_of(w.to, CellMode::Qlc), CellMode::Qlc);
        assert!(!ftl.is_cached(42));
        assert_eq!(ftl.locate_read(42), w.to);
        assert_eq!(ftl.migrations(), 1);
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn zero_cache_fraction_writes_directly_to_capacity() {
        let mut ftl = HybridFtl::new(small(), 0.0);
        let out = ftl.write(7);
        assert_eq!(ftl.mode_of(out.loc, CellMode::Qlc), CellMode::Qlc);
        assert!(!ftl.is_cached(7));
        assert_eq!(ftl.cache_capacity_slots(), 0);
        assert_eq!(ftl.cache_occupancy(), 0.0);
        assert!(ftl.migrate(7).is_none());
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn cold_reads_resolve_in_capacity_region() {
        let mut ftl = HybridFtl::new(small(), 0.25);
        let loc = ftl.locate_read(9);
        assert_eq!(ftl.mode_of(loc, CellMode::Qlc), CellMode::Qlc);
        assert_eq!(ftl.locate_read(9), loc, "stable mapping");
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn migration_candidates_are_oldest_first() {
        let mut ftl = HybridFtl::new(small(), 0.25);
        for slot in 0..10u64 {
            ftl.write(slot);
        }
        // Rewriting slot 0 makes it the *youngest* resident.
        ftl.write(0);
        let c = ftl.migration_candidates(3);
        assert_eq!(c, vec![1, 2, 3]);
        // Candidates are a view, not a mutation.
        assert_eq!(ftl.cached_slots(), 10);
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn full_cache_forces_evictions_instead_of_failing() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 4,
            blocks_per_plane: 8,
            pages_per_block: 4,
            page_bytes: 16 * 1024,
        };
        // Write half: blocks 4..8; 25 % cache → 1 SLC block → 4 slots/die.
        let mut ftl = HybridFtl::new(g, 0.25);
        assert_eq!(ftl.slc_blocks_per_die(), 1);
        let mut evictions = 0;
        for round in 0..2 {
            for slot in 0..16u64 {
                let out = ftl.write(slot);
                evictions += out.evicted.len();
                ftl.check_integrity()
                    .unwrap_or_else(|e| panic!("round {round} slot {slot}: {e}"));
            }
        }
        assert!(evictions > 0, "full cache never evicted");
        assert!(ftl.cached_slots() <= ftl.cache_capacity_slots());
        // Every slot still resolves.
        for slot in 0..16u64 {
            let _ = ftl.locate_read(slot);
        }
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn rewriting_cached_slot_keeps_single_copy() {
        let mut ftl = HybridFtl::new(small(), 0.25);
        for _ in 0..100 {
            ftl.write(5);
        }
        assert!(ftl.is_cached(5));
        assert_eq!(ftl.cached_slots(), 1);
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn capacity_gc_reclaims_dead_migrated_copies() {
        let g = FlashGeometry {
            channels: 2,
            dies_per_channel: 1,
            planes_per_die: 4,
            blocks_per_plane: 8,
            pages_per_block: 4,
            page_bytes: 16 * 1024,
        };
        let mut ftl = HybridFtl::new(g, 0.0);
        // Overwrite a small working set until GC must run.
        for _ in 0..40 {
            for slot in 0..4u64 {
                ftl.write(slot);
            }
        }
        assert!(ftl.erases() > 0, "capacity GC never ran");
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn emptied_slc_blocks_are_erased_and_reused() {
        let g = FlashGeometry {
            channels: 1,
            dies_per_channel: 1,
            planes_per_die: 4,
            blocks_per_plane: 16,
            pages_per_block: 4,
            page_bytes: 16 * 1024,
        };
        // Write half: 8 blocks; 50 % cache → 4 SLC blocks, 16 slots.
        let mut ftl = HybridFtl::new(g, 0.5);
        for slot in 0..8u64 {
            ftl.write(slot);
        }
        // Drain everything: two whole SLC blocks empty out.
        for slot in 0..8u64 {
            ftl.migrate(slot);
        }
        assert!(ftl.erases() >= 1, "no SLC block reclaimed");
        assert_eq!(ftl.cached_slots(), 0);
        ftl.check_integrity().unwrap();
    }

    #[test]
    fn amp_table_orders_modes_correctly() {
        let t = AmpTable::build(1000, 30.0);
        for age in [0.0, 5.0, 14.5, 29.0, 60.0] {
            let slc = t.factor(CellMode::Slc, age);
            let tlc = t.factor(CellMode::Tlc, age);
            let qlc = t.factor(CellMode::Qlc, age);
            assert_eq!(tlc, 1.0);
            assert!(slc < 0.01, "age {age}: SLC factor {slc} not tiny");
            assert!(qlc > 3.0, "age {age}: QLC factor {qlc} not > 3");
        }
    }

    #[test]
    fn amp_table_interpolates_between_days() {
        let t = AmpTable::build(500, 10.0);
        let a = t.factor(CellMode::Qlc, 3.0);
        let b = t.factor(CellMode::Qlc, 4.0);
        let mid = t.factor(CellMode::Qlc, 3.5);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        assert!(
            (lo..=hi).contains(&mid),
            "midpoint {mid} outside [{lo}, {hi}]"
        );
    }

    #[test]
    fn bg_kind_span_names() {
        assert_eq!(BgKind::Gc.span_name(), "gc");
        assert_eq!(BgKind::Migrate.span_name(), "migrate");
        assert_eq!(BgKind::Refresh.span_name(), "refresh");
    }
}
