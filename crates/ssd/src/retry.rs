//! The evaluated read-retry schemes (§III-B, §VI-A).

use std::fmt;

use rif_flash::geometry::PageKind;

/// Which read-retry solution the simulated SSD employs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RetryKind {
    /// `SSDzero`: a hypothetical SSD whose ECC always succeeds — the
    /// performance upper bound.
    Zero,
    /// `SSDone`: an idealized reactive solution with N_RR = 1 — one failed
    /// decode, then a perfect re-read.
    IdealOne,
    /// `SENC` (Sentinel, MICRO'20): reactive; reading the sentinel cells
    /// of a failed CSB/MSB page requires an extra off-chip read before the
    /// corrective re-read.
    Sentinel,
    /// `SWR` (Swift-Read, ISSCC'22): reactive; the retry is a single flash
    /// command doing two senses in-die, then one transfer.
    SwiftRead,
    /// `SWR+`: SWR with proactive V_REF tracking that cancels part of the
    /// drift, lowering the initial failure probability.
    SwiftReadPlus,
    /// `RPSSD`: the RP predictor placed in the *controller* — failed pages
    /// still cross the channel, but their hopeless 20-µs decodes are cut
    /// short by a 2.5-µs syndrome check.
    RpSsd,
    /// `RiFSSD`: the proposed scheme — on-die RP + RVS; uncorrectable
    /// senses never leave the die.
    Rif,
}

impl RetryKind {
    /// Every scheme, in the presentation order of Fig. 17.
    pub const ALL: [RetryKind; 7] = [
        RetryKind::Sentinel,
        RetryKind::SwiftRead,
        RetryKind::SwiftReadPlus,
        RetryKind::RpSsd,
        RetryKind::Rif,
        RetryKind::IdealOne,
        RetryKind::Zero,
    ];

    /// The paper's label for this configuration.
    pub fn label(&self) -> &'static str {
        match self {
            RetryKind::Zero => "SSDzero",
            RetryKind::IdealOne => "SSDone",
            RetryKind::Sentinel => "SENC",
            RetryKind::SwiftRead => "SWR",
            RetryKind::SwiftReadPlus => "SWR+",
            RetryKind::RpSsd => "RPSSD",
            RetryKind::Rif => "RiFSSD",
        }
    }

    /// Looks a scheme up by its paper label.
    pub fn by_label(label: &str) -> Option<RetryKind> {
        RetryKind::ALL.into_iter().find(|k| k.label() == label)
    }

    /// True when a failed decode of a page of `kind` needs an extra
    /// off-chip sentinel-cell read before the corrective re-read
    /// (§III-B: sentinel cells of some page types use different V_REF
    /// values than the failed page itself; only the LSB read shares its
    /// references in our TLC mapping).
    pub fn sentinel_extra_read(&self, kind: PageKind) -> bool {
        matches!(self, RetryKind::Sentinel) && kind != PageKind::Lsb
    }

    /// The initial-read RBER for this scheme, given the page's RBER at
    /// default references and at near-optimal references.
    ///
    /// `SWR+` proactively tracks V_REF per block, but tracking is
    /// periodic and block-granular, so it lags the actual drift of any
    /// individual page: it cancels only a modest share of the excess RBER
    /// (weight 0.15 in log space), leaving most stale cold pages still in
    /// need of a retry — consistent with Fig. 17, where SWR+ improves on
    /// SWR by far less than RiF does. Every other scheme first reads at
    /// the defaults.
    pub fn initial_rber(&self, rber_default: f64, rber_optimal: f64) -> f64 {
        match self {
            RetryKind::SwiftReadPlus => {
                const TRACKING_WEIGHT: f64 = 0.15;
                rber_default * (rber_optimal / rber_default).powf(TRACKING_WEIGHT)
            }
            _ => rber_default,
        }
    }

    /// True for schemes carrying an RP module (controller- or die-side).
    pub fn has_predictor(&self) -> bool {
        matches!(self, RetryKind::RpSsd | RetryKind::Rif)
    }
}

impl fmt::Display for RetryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for k in RetryKind::ALL {
            assert_eq!(RetryKind::by_label(k.label()), Some(k));
        }
        assert_eq!(RetryKind::by_label("nope"), None);
    }

    #[test]
    fn sentinel_extra_read_only_for_senc_nonlsb() {
        assert!(RetryKind::Sentinel.sentinel_extra_read(PageKind::Csb));
        assert!(RetryKind::Sentinel.sentinel_extra_read(PageKind::Msb));
        assert!(!RetryKind::Sentinel.sentinel_extra_read(PageKind::Lsb));
        assert!(!RetryKind::SwiftRead.sentinel_extra_read(PageKind::Csb));
        assert!(!RetryKind::Rif.sentinel_extra_read(PageKind::Msb));
    }

    #[test]
    fn swr_plus_initial_rber_between_default_and_optimal() {
        let d = 0.01;
        let o = 0.0004;
        let r = RetryKind::SwiftReadPlus.initial_rber(d, o);
        assert!(r < d && r > o, "got {r}");
        assert_eq!(RetryKind::SwiftRead.initial_rber(d, o), d);
        assert_eq!(RetryKind::Rif.initial_rber(d, o), d);
    }

    #[test]
    fn predictor_flag() {
        assert!(RetryKind::Rif.has_predictor());
        assert!(RetryKind::RpSsd.has_predictor());
        assert!(!RetryKind::Sentinel.has_predictor());
        assert!(!RetryKind::Zero.has_predictor());
    }

    #[test]
    fn display_matches_label() {
        assert_eq!(format!("{}", RetryKind::Rif), "RiFSSD");
        assert_eq!(format!("{}", RetryKind::SwiftReadPlus), "SWR+");
    }
}
