//! Deterministic random-number utilities.
//!
//! Every stochastic component of the reproduction (error injection, process
//! variation, trace generation, prediction-accuracy sampling) draws from a
//! [`SimRng`] seeded explicitly, so that any experiment can be re-run
//! bit-identically.
//!
//! The generator is a vendored **xoshiro256++** (Blackman & Vigna) seeded
//! through a **SplitMix64** expansion of a 64-bit seed — the same
//! construction `rand`'s `SmallRng` uses on 64-bit targets, carried in-tree
//! so the workspace builds with zero registry dependencies (the evaluation
//! environment is fully offline). SplitMix64 also drives
//! [`SimRng::stream`], which derives statistically independent per-trial
//! streams for the parallel Monte-Carlo harness: trial `i` gets the same
//! stream no matter which worker thread runs it, so multi-threaded sweeps
//! are bit-identical to single-threaded ones.

/// Golden-ratio increment of the SplitMix64 sequence.
const SPLITMIX_PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// One SplitMix64 step: advances `state` and returns the mixed output.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(SPLITMIX_PHI);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seedable RNG with the convenience draws the simulator needs.
///
/// Wraps a vendored xoshiro256++ core and adds Gaussian,
/// Poisson-interarrival and Zipf sampling.
///
/// # Example
///
/// ```
/// use rif_events::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    /// xoshiro256++ state; never all-zero.
    s: [u64; 4],
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed (SplitMix64 state expansion).
    pub fn seed_from(seed: u64) -> Self {
        let mut state = seed;
        let s = [
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
            splitmix64(&mut state),
        ];
        SimRng {
            s,
            gauss_spare: None,
        }
    }

    /// Derives the RNG for trial `index` of a seeded experiment: an
    /// independent stream reachable without generating the preceding
    /// trials' draws. The parallel Monte-Carlo harness gives trial `i`
    /// `SimRng::stream(seed, i)` on whichever worker picks it up, which is
    /// what makes `--threads N` output independent of `N`.
    pub fn stream(seed: u64, index: u64) -> SimRng {
        // SplitMix64 split: jump the stream to a per-index state, then mix
        // once so that consecutive indices land on unrelated seeds.
        let mut state = seed ^ index.wrapping_add(1).wrapping_mul(SPLITMIX_PHI);
        let derived = splitmix64(&mut state);
        SimRng::seed_from(derived)
    }

    /// Derives an independent child RNG; useful to give each simulated
    /// component its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(SPLITMIX_PHI);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let out = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        out
    }

    /// Uniform in `[0, 1)`: the top 53 bits of a draw scaled by 2⁻⁵³.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.bounded(n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + self.bounded(hi - lo)
    }

    /// Unbiased uniform draw in `[0, range)` via Lemire's widening-multiply
    /// rejection method.
    fn bounded(&mut self, range: u64) -> u64 {
        debug_assert!(range > 0);
        // Accept v when the low half of v * range falls in the zone that
        // maps uniformly onto [0, range).
        let zone = (range << range.leading_zeros()).wrapping_sub(1);
        loop {
            let v = self.next_u64();
            let wide = (v as u128) * (range as u128);
            if (wide as u64) <= zone {
                return (wide >> 64) as u64;
            }
        }
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller: draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.uniform();
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian_with(mu, sigma).exp()
    }

    /// Exponential interarrival time with the given rate (events per unit
    /// time); the building block of Poisson arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Samples `k` in `[0, n)` from a Zipf distribution with exponent `s`
    /// using a precomputed [`ZipfTable`].
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self.uniform())
    }
}

/// Precomputed CDF for Zipf-distributed sampling over `n` ranks.
///
/// Trace generators use this to model hot/cold page popularity: rank 0 is
/// the hottest LBA region.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the CDF for `n` ranks with exponent `s` (s = 0 is uniform;
    /// larger s concentrates probability on low ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf table needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table has no ranks (never: `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform `u in [0,1)` to a rank.
    pub fn sample(&self, u: f64) -> usize {
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SimRng::seed_from(7);
        let mut x = root.fork(1);
        let mut y = root.fork(2);
        let same = (0..32).all(|_| x.next_u64() == y.next_u64());
        assert!(!same);
    }

    #[test]
    fn stream_is_deterministic_and_independent_of_order() {
        let mut a3 = SimRng::stream(99, 3);
        let mut b3 = SimRng::stream(99, 3);
        for _ in 0..32 {
            assert_eq!(a3.next_u64(), b3.next_u64());
        }
        // Different indices and different seeds give different streams.
        let mut c = SimRng::stream(99, 4);
        let mut d = SimRng::stream(100, 3);
        let mut a = SimRng::stream(99, 3);
        let c_same = (0..32).all(|_| a.next_u64() == c.next_u64());
        let mut a = SimRng::stream(99, 3);
        let d_same = (0..32).all(|_| a.next_u64() == d.next_u64());
        assert!(!c_same && !d_same);
    }

    #[test]
    fn stream_indices_are_uncorrelated_statistically() {
        // Adjacent trial indices must not produce correlated uniforms.
        let n = 10_000;
        let mut acc = 0.0;
        for i in 0..64u64 {
            let mut x = SimRng::stream(5, i);
            let mut y = SimRng::stream(5, i + 1);
            let mut dot = 0.0;
            for _ in 0..n {
                dot += (x.uniform() - 0.5) * (y.uniform() - 0.5);
            }
            acc += dot / n as f64;
        }
        assert!((acc / 64.0).abs() < 0.005, "correlation {acc}");
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_range(-3.0, 4.0);
            assert!((-3.0..4.0).contains(&v));
        }
    }

    #[test]
    fn index_is_unbiased_over_small_range() {
        let mut r = SimRng::seed_from(41);
        let mut counts = [0usize; 6];
        let trials = 120_000;
        for _ in 0..trials {
            counts[r.index(6)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / trials as f64;
            assert!((frac - 1.0 / 6.0).abs() < 0.01, "face {i}: {frac}");
        }
    }

    #[test]
    fn int_range_respects_bounds() {
        let mut r = SimRng::seed_from(43);
        for _ in 0..10_000 {
            let v = r.int_range(17, 23);
            assert!((17..23).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::seed_from(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gaussian();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from(13);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = SimRng::seed_from(17);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[r.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let table = ZipfTable::new(10, 0.0);
        let mut r = SimRng::seed_from(19);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn zipf_sample_edges() {
        let table = ZipfTable::new(4, 1.2);
        assert_eq!(table.sample(0.0), 0);
        assert_eq!(table.sample(0.999_999_9), 3);
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = SimRng::seed_from(23);
        for _ in 0..1000 {
            assert!(r.log_normal(0.0, 0.5) > 0.0);
        }
    }
}
