//! Deterministic random-number utilities.
//!
//! Every stochastic component of the reproduction (error injection, process
//! variation, trace generation, prediction-accuracy sampling) draws from a
//! [`SimRng`] seeded explicitly, so that any experiment can be re-run
//! bit-identically.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// A seedable RNG with the convenience draws the simulator needs.
///
/// Wraps [`rand::rngs::SmallRng`] and adds Gaussian, Poisson-interarrival and
/// Zipf sampling, which the `rand` core does not provide without `rand_distr`.
///
/// # Example
///
/// ```
/// use rif_events::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
    /// Cached second Gaussian variate from Box–Muller.
    gauss_spare: Option<f64>,
}

impl SimRng {
    /// Creates an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
            gauss_spare: None,
        }
    }

    /// Derives an independent child RNG; useful to give each simulated
    /// component its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> SimRng {
        let s = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from(s)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be non-empty");
        self.inner.gen_range(0..n)
    }

    /// Uniform integer in `[lo, hi)`.
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal variate via Box–Muller.
    pub fn gaussian(&mut self) -> f64 {
        if let Some(z) = self.gauss_spare.take() {
            return z;
        }
        // Box–Muller: draw u in (0,1] to avoid ln(0).
        let u = 1.0 - self.uniform();
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal variate with the given mean and standard deviation.
    pub fn gaussian_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.gaussian()
    }

    /// Log-normal variate: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.gaussian_with(mu, sigma).exp()
    }

    /// Exponential interarrival time with the given rate (events per unit
    /// time); the building block of Poisson arrival processes.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not positive.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0, "rate must be positive, got {rate}");
        -(1.0 - self.uniform()).ln() / rate
    }

    /// Samples `k` in `[0, n)` from a Zipf distribution with exponent `s`
    /// using a precomputed [`ZipfTable`].
    pub fn zipf(&mut self, table: &ZipfTable) -> usize {
        table.sample(self.uniform())
    }
}

/// Precomputed CDF for Zipf-distributed sampling over `n` ranks.
///
/// Trace generators use this to model hot/cold page popularity: rank 0 is
/// the hottest LBA region.
#[derive(Debug, Clone)]
pub struct ZipfTable {
    cdf: Vec<f64>,
}

impl ZipfTable {
    /// Builds the CDF for `n` ranks with exponent `s` (s = 0 is uniform;
    /// larger s concentrates probability on low ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf table needs at least one rank");
        assert!(s >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        ZipfTable { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when the table has no ranks (never: `new` rejects `n == 0`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Maps a uniform `u in [0,1)` to a rank.
    pub fn sample(&self, u: f64) -> usize {
        match self
            .cdf
            .binary_search_by(|probe| probe.partial_cmp(&u).expect("CDF is finite"))
        {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn forked_streams_differ() {
        let mut root = SimRng::seed_from(7);
        let mut x = root.fork(1);
        let mut y = root.fork(2);
        let same = (0..32).all(|_| x.next_u64() == y.next_u64());
        assert!(!same);
    }

    #[test]
    fn uniform_bounds() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_range(-3.0, 4.0);
            assert!((-3.0..4.0).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn gaussian_moments() {
        let mut r = SimRng::seed_from(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let z = r.gaussian();
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn exponential_mean_matches_rate() {
        let mut r = SimRng::seed_from(13);
        let rate = 4.0;
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 1.0 / rate).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let table = ZipfTable::new(100, 1.0);
        let mut r = SimRng::seed_from(17);
        let mut counts = [0usize; 100];
        for _ in 0..50_000 {
            counts[r.zipf(&table)] += 1;
        }
        assert!(counts[0] > counts[10]);
        assert!(counts[10] > counts[90]);
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let table = ZipfTable::new(10, 0.0);
        let mut r = SimRng::seed_from(19);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.zipf(&table)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 100_000.0;
            assert!((frac - 0.1).abs() < 0.01, "frac {frac}");
        }
    }

    #[test]
    fn zipf_sample_edges() {
        let table = ZipfTable::new(4, 1.2);
        assert_eq!(table.sample(0.0), 0);
        assert_eq!(table.sample(0.999_999_9), 3);
        assert_eq!(table.len(), 4);
        assert!(!table.is_empty());
    }

    #[test]
    fn log_normal_is_positive() {
        let mut r = SimRng::seed_from(23);
        for _ in 0..1000 {
            assert!(r.log_normal(0.0, 0.5) > 0.0);
        }
    }
}
