//! Structured tracing primitives: spans, counters, gauges and state
//! markers with simulation-time stamps.
//!
//! The SSD engine (and any other event-driven component) emits its
//! activity through a [`Tracer`]. A disabled tracer costs one branch per
//! callsite and allocates nothing; an enabled tracer forwards every
//! record to a [`TraceSink`] — typically a [`JsonlSink`] writing one JSON
//! object per line, the format consumed by the `rif-ssd` trace checker.
//!
//! # JSONL schema
//!
//! Every line is a flat JSON object. The `e` field selects the record
//! type; `t` is always the simulation time in integer nanoseconds.
//!
//! | `e` | record | other fields |
//! |-----|--------|--------------|
//! | `"b"` | span begin | `n` name, `id`, optional `p` parent id, `res` resource, `req` request id, `bytes` |
//! | `"e"` | span end   | `id` |
//! | `"c"` | counter    | `k` key, `v` non-negative integer delta |
//! | `"g"` | gauge      | `k` key, `v` float value |
//! | `"s"` | state      | `res` resource, `st` state name |
//!
//! Span ids are unique and non-zero within one trace. Resources are
//! strings such as `die:3`, `chan:0`, `ecc:0`, `host` — spans sharing a
//! resource claim exclusive use of it for their duration.
//!
//! # Example
//!
//! ```
//! use rif_events::trace::{JsonlSink, SharedBuf, TraceRecord, Tracer};
//! use rif_events::SimTime;
//!
//! let buf = SharedBuf::new();
//! let mut tr = Tracer::to_sink(Box::new(JsonlSink::new(buf.clone())));
//! let id = tr.span_begin(SimTime::ZERO, "request", None, None, Some(0), Some(65536));
//! tr.counter(SimTime::from_us(10), "bytes.completed", 65536);
//! tr.span_end(SimTime::from_us(10), id);
//! tr.flush();
//! let records = TraceRecord::parse_jsonl(&buf.contents()).unwrap();
//! assert_eq!(records.len(), 3);
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

use crate::stats::LatencyHistogram;
use crate::time::{SimDuration, SimTime};

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// One parsed trace record (the in-memory form of a JSONL line).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// A span opened at `t`.
    SpanBegin {
        /// Simulation time of the record.
        t: SimTime,
        /// Span name (`request`, `sense`, `xfer`, `decode`, ...).
        name: String,
        /// Unique non-zero span id.
        id: u64,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Exclusive resource the span occupies, if any.
        res: Option<String>,
        /// Host-request id the span works for, if any.
        req: Option<u64>,
        /// Payload bytes attributed to the span, if any.
        bytes: Option<u64>,
    },
    /// The span `id` closed at `t`.
    SpanEnd {
        /// Simulation time of the record.
        t: SimTime,
        /// Id of the span being closed.
        id: u64,
    },
    /// Monotonic counter `key` increased by `delta` at `t`.
    Counter {
        /// Simulation time of the record.
        t: SimTime,
        /// Counter key.
        key: String,
        /// Non-negative increment.
        delta: u64,
    },
    /// Gauge `key` observed at `value` at `t`.
    Gauge {
        /// Simulation time of the record.
        t: SimTime,
        /// Gauge key.
        key: String,
        /// Observed value.
        value: f64,
    },
    /// Resource `res` entered state `state` at `t` (until its next state
    /// record).
    State {
        /// Simulation time of the record.
        t: SimTime,
        /// Resource changing state.
        res: String,
        /// New state name.
        state: String,
    },
}

impl TraceRecord {
    /// The record's timestamp.
    pub fn time(&self) -> SimTime {
        match self {
            TraceRecord::SpanBegin { t, .. }
            | TraceRecord::SpanEnd { t, .. }
            | TraceRecord::Counter { t, .. }
            | TraceRecord::Gauge { t, .. }
            | TraceRecord::State { t, .. } => *t,
        }
    }

    /// Parses a full JSONL document (blank lines skipped).
    ///
    /// # Errors
    ///
    /// Returns the first malformed line with its 1-based number.
    pub fn parse_jsonl(text: &str) -> Result<Vec<TraceRecord>, TraceParseError> {
        let mut out = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            out.push(Self::parse_line(line).map_err(|message| TraceParseError {
                line: i + 1,
                message,
            })?);
        }
        Ok(out)
    }

    /// Parses one JSONL line.
    fn parse_line(line: &str) -> Result<TraceRecord, String> {
        let fields = parse_flat_object(line)?;
        let t = SimTime::from_ns(fields.require_u64("t")?);
        match fields.require_str("e")? {
            "b" => Ok(TraceRecord::SpanBegin {
                t,
                name: fields.require_str("n")?.to_string(),
                id: fields.require_u64("id")?,
                parent: fields.get_u64("p")?,
                res: fields.get_str("res").map(str::to_string),
                req: fields.get_u64("req")?,
                bytes: fields.get_u64("bytes")?,
            }),
            "e" => Ok(TraceRecord::SpanEnd {
                t,
                id: fields.require_u64("id")?,
            }),
            "c" => Ok(TraceRecord::Counter {
                t,
                key: fields.require_str("k")?.to_string(),
                delta: fields.require_u64("v")?,
            }),
            "g" => Ok(TraceRecord::Gauge {
                t,
                key: fields.require_str("k")?.to_string(),
                value: fields.require_f64("v")?,
            }),
            "s" => Ok(TraceRecord::State {
                t,
                res: fields.require_str("res")?.to_string(),
                state: fields.require_str("st")?.to_string(),
            }),
            other => Err(format!("unknown record type {other:?}")),
        }
    }
}

/// A JSONL parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// Line number of the malformed record.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

// ---------------------------------------------------------------------------
// Flat-JSON helpers (the schema never nests)
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum JsonValue {
    Str(String),
    Num(f64),
}

#[derive(Debug, Default)]
struct FlatObject {
    fields: Vec<(String, JsonValue)>,
}

impl FlatObject {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(JsonValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    fn require_str(&self, key: &str) -> Result<&str, String> {
        self.get_str(key)
            .ok_or_else(|| format!("missing string field {key:?}"))
    }

    fn get_u64(&self, key: &str) -> Result<Option<u64>, String> {
        match self.get(key) {
            None => Ok(None),
            Some(JsonValue::Num(n)) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Ok(Some(*n as u64))
            }
            Some(v) => Err(format!("field {key:?} is not a u64: {v:?}")),
        }
    }

    fn require_u64(&self, key: &str) -> Result<u64, String> {
        self.get_u64(key)?
            .ok_or_else(|| format!("missing integer field {key:?}"))
    }

    fn require_f64(&self, key: &str) -> Result<f64, String> {
        match self.get(key) {
            Some(JsonValue::Num(n)) => Ok(*n),
            _ => Err(format!("missing number field {key:?}")),
        }
    }
}

/// Parses `{"key":value,...}` with string and number values only.
fn parse_flat_object(line: &str) -> Result<FlatObject, String> {
    let mut chars = line.char_indices().peekable();
    let mut obj = FlatObject::default();
    skip_ws(line, &mut chars);
    expect_char(line, &mut chars, '{')?;
    skip_ws(line, &mut chars);
    if matches!(chars.peek(), Some((_, '}'))) {
        chars.next();
        return Ok(obj);
    }
    loop {
        skip_ws(line, &mut chars);
        let key = parse_string(line, &mut chars)?;
        skip_ws(line, &mut chars);
        expect_char(line, &mut chars, ':')?;
        skip_ws(line, &mut chars);
        let value = match chars.peek() {
            Some((_, '"')) => JsonValue::Str(parse_string(line, &mut chars)?),
            Some(_) => JsonValue::Num(parse_number(line, &mut chars)?),
            None => return Err("unexpected end of line".into()),
        };
        obj.fields.push((key, value));
        skip_ws(line, &mut chars);
        match chars.next() {
            Some((_, ',')) => continue,
            Some((_, '}')) => break,
            other => return Err(format!("expected ',' or '}}', got {other:?}")),
        }
    }
    skip_ws(line, &mut chars);
    if let Some((i, c)) = chars.next() {
        return Err(format!("trailing input {c:?} at byte {i}"));
    }
    Ok(obj)
}

type CharStream<'a> = std::iter::Peekable<std::str::CharIndices<'a>>;

fn skip_ws(_line: &str, chars: &mut CharStream<'_>) {
    while matches!(chars.peek(), Some((_, c)) if c.is_ascii_whitespace()) {
        chars.next();
    }
}

fn expect_char(_line: &str, chars: &mut CharStream<'_>, want: char) -> Result<(), String> {
    match chars.next() {
        Some((_, c)) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn parse_string(_line: &str, chars: &mut CharStream<'_>) -> Result<String, String> {
    expect_char(_line, chars, '"')?;
    let mut out = String::new();
    loop {
        match chars.next() {
            Some((_, '"')) => return Ok(out),
            Some((_, '\\')) => match chars.next() {
                Some((_, '"')) => out.push('"'),
                Some((_, '\\')) => out.push('\\'),
                Some((_, 'n')) => out.push('\n'),
                Some((_, 't')) => out.push('\t'),
                Some((_, 'r')) => out.push('\r'),
                Some((_, 'u')) => {
                    let mut code = 0u32;
                    for _ in 0..4 {
                        let (_, h) = chars.next().ok_or("truncated \\u escape")?;
                        code = code * 16 + h.to_digit(16).ok_or("bad hex in \\u escape")?;
                    }
                    out.push(char::from_u32(code).ok_or("invalid \\u code point")?);
                }
                other => return Err(format!("bad escape {other:?}")),
            },
            Some((_, c)) => out.push(c),
            None => return Err("unterminated string".into()),
        }
    }
}

fn parse_number(_line: &str, chars: &mut CharStream<'_>) -> Result<f64, String> {
    let mut text = String::new();
    while let Some((_, c)) = chars.peek() {
        if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
            text.push(*c);
            chars.next();
        } else {
            break;
        }
    }
    text.parse::<f64>()
        .map_err(|_| format!("bad number {text:?}"))
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives trace records as they are emitted.
///
/// Implementations must be cheap relative to the simulation; the hot
/// callsites already pay for string formatting when a sink is attached.
pub trait TraceSink {
    /// A span opened.
    #[allow(clippy::too_many_arguments)]
    fn span_begin(
        &mut self,
        t: SimTime,
        name: &str,
        id: u64,
        parent: Option<u64>,
        res: Option<&str>,
        req: Option<u64>,
        bytes: Option<u64>,
    );
    /// The span `id` closed.
    fn span_end(&mut self, t: SimTime, id: u64);
    /// Counter increment.
    fn counter(&mut self, t: SimTime, key: &str, delta: u64);
    /// Gauge observation.
    fn gauge(&mut self, t: SimTime, key: &str, value: f64);
    /// Resource state change.
    fn state(&mut self, t: SimTime, res: &str, state: &str);
    /// Flushes buffered output (no-op by default).
    fn flush(&mut self) {}
}

/// Writes one JSON object per record to an [`io::Write`].
///
/// Wrap files in a [`std::io::BufWriter`] — the sink writes one line per
/// record. I/O errors abort the simulation via panic: a half-written
/// trace would silently pass for a shorter run.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    w: W,
    line: String,
}

impl<W: Write> JsonlSink<W> {
    /// Creates a sink writing to `w`.
    pub fn new(w: W) -> Self {
        JsonlSink {
            w,
            line: String::with_capacity(128),
        }
    }

    fn emit(&mut self) {
        self.line.push('\n');
        self.w
            .write_all(self.line.as_bytes())
            .expect("trace sink write failed");
    }
}

fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl<W: Write> TraceSink for JsonlSink<W> {
    fn span_begin(
        &mut self,
        t: SimTime,
        name: &str,
        id: u64,
        parent: Option<u64>,
        res: Option<&str>,
        req: Option<u64>,
        bytes: Option<u64>,
    ) {
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{},\"e\":\"b\",\"n\":", t.as_ns());
        push_json_str(&mut self.line, name);
        let _ = write!(self.line, ",\"id\":{id}");
        if let Some(p) = parent {
            let _ = write!(self.line, ",\"p\":{p}");
        }
        if let Some(r) = res {
            self.line.push_str(",\"res\":");
            push_json_str(&mut self.line, r);
        }
        if let Some(q) = req {
            let _ = write!(self.line, ",\"req\":{q}");
        }
        if let Some(b) = bytes {
            let _ = write!(self.line, ",\"bytes\":{b}");
        }
        self.line.push('}');
        self.emit();
    }

    fn span_end(&mut self, t: SimTime, id: u64) {
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{},\"e\":\"e\",\"id\":{id}}}", t.as_ns());
        self.emit();
    }

    fn counter(&mut self, t: SimTime, key: &str, delta: u64) {
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{},\"e\":\"c\",\"k\":", t.as_ns());
        push_json_str(&mut self.line, key);
        let _ = write!(self.line, ",\"v\":{delta}}}");
        self.emit();
    }

    fn gauge(&mut self, t: SimTime, key: &str, value: f64) {
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{},\"e\":\"g\",\"k\":", t.as_ns());
        push_json_str(&mut self.line, key);
        let _ = write!(self.line, ",\"v\":{value}}}");
        self.emit();
    }

    fn state(&mut self, t: SimTime, res: &str, state: &str) {
        self.line.clear();
        let _ = write!(self.line, "{{\"t\":{},\"e\":\"s\",\"res\":", t.as_ns());
        push_json_str(&mut self.line, res);
        self.line.push_str(",\"st\":");
        push_json_str(&mut self.line, state);
        self.line.push('}');
        self.emit();
    }

    fn flush(&mut self) {
        self.w.flush().expect("trace sink flush failed");
    }
}

/// A clonable in-memory byte buffer implementing [`io::Write`], for
/// capturing a trace without touching the filesystem.
///
/// Clones share the same buffer, so a test can keep one handle while the
/// simulator consumes the other.
#[derive(Debug, Clone, Default)]
pub struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl SharedBuf {
    /// Creates an empty shared buffer.
    pub fn new() -> Self {
        SharedBuf::default()
    }

    /// The buffer contents decoded as UTF-8.
    pub fn contents(&self) -> String {
        String::from_utf8(self.0.lock().expect("trace buffer poisoned").clone())
            .expect("trace output is UTF-8")
    }
}

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0
            .lock()
            .expect("trace buffer poisoned")
            .extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tracer
// ---------------------------------------------------------------------------

/// The tracing front-end components emit through.
///
/// Holds either nothing (disabled: every call is a branch and an
/// immediate return, no allocation, no formatting) or a boxed
/// [`TraceSink`]. Span ids are allocated here, monotonically from 1; the
/// disabled tracer hands out id 0 for every span.
#[derive(Default)]
pub struct Tracer {
    sink: Option<Box<dyn TraceSink>>,
    next_id: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.sink.is_some())
            .field("next_id", &self.next_id)
            .finish()
    }
}

impl Tracer {
    /// A tracer that drops everything.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// A tracer forwarding to `sink`.
    pub fn to_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            sink: Some(sink),
            next_id: 0,
        }
    }

    /// True when records are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Opens a span; returns its id (0 when disabled).
    pub fn span_begin(
        &mut self,
        t: SimTime,
        name: &str,
        parent: Option<u64>,
        res: Option<&str>,
        req: Option<u64>,
        bytes: Option<u64>,
    ) -> u64 {
        match &mut self.sink {
            None => 0,
            Some(sink) => {
                self.next_id += 1;
                let id = self.next_id;
                sink.span_begin(t, name, id, parent.filter(|&p| p != 0), res, req, bytes);
                id
            }
        }
    }

    /// Closes span `id` (no-op when disabled or `id == 0`).
    pub fn span_end(&mut self, t: SimTime, id: u64) {
        if let Some(sink) = &mut self.sink {
            if id != 0 {
                sink.span_end(t, id);
            }
        }
    }

    /// Emits a counter increment.
    pub fn counter(&mut self, t: SimTime, key: &str, delta: u64) {
        if let Some(sink) = &mut self.sink {
            sink.counter(t, key, delta);
        }
    }

    /// Emits a gauge observation.
    pub fn gauge(&mut self, t: SimTime, key: &str, value: f64) {
        if let Some(sink) = &mut self.sink {
            sink.gauge(t, key, value);
        }
    }

    /// Emits a resource state change.
    pub fn state(&mut self, t: SimTime, res: &str, state: &str) {
        if let Some(sink) = &mut self.sink {
            sink.state(t, res, state);
        }
    }

    /// Flushes the sink.
    pub fn flush(&mut self) {
        if let Some(sink) = &mut self.sink {
            sink.flush();
        }
    }
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

/// Formats a labeled metric key: `labeled("retries.in_die", "RiFSSD")` →
/// `retries.in_die{RiFSSD}`.
pub fn labeled(name: &str, label: &str) -> String {
    format!("{name}{{{label}}}")
}

/// A registry unifying monotonic counters, gauges and latency histograms
/// behind string keys.
///
/// Keys are free-form; the convention is dotted names with an optional
/// `{label}` suffix (see [`labeled`]). Iteration and [`lines`] output are
/// sorted by key, so rendering is deterministic.
///
/// [`lines`]: MetricsRegistry::lines
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, LatencyHistogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Adds `delta` to counter `key` (created at zero).
    pub fn inc(&mut self, key: &str, delta: u64) {
        *self
            .counters
            .entry_ref_or_insert(key)
            .expect("counter entry") += delta;
    }

    /// Sets gauge `key` to `value`.
    pub fn set_gauge(&mut self, key: &str, value: f64) {
        match self.gauges.get_mut(key) {
            Some(v) => *v = value,
            None => {
                self.gauges.insert(key.to_string(), value);
            }
        }
    }

    /// Raises gauge `key` to `value` if larger (creates at `value`).
    pub fn max_gauge(&mut self, key: &str, value: f64) {
        match self.gauges.get_mut(key) {
            Some(v) => *v = v.max(value),
            None => {
                self.gauges.insert(key.to_string(), value);
            }
        }
    }

    /// Records `d` into histogram `key` (created empty).
    pub fn observe(&mut self, key: &str, d: SimDuration) {
        match self.histograms.get_mut(key) {
            Some(h) => h.record(d),
            None => {
                let mut h = LatencyHistogram::new();
                h.record(d);
                self.histograms.insert(key.to_string(), h);
            }
        }
    }

    /// Current value of counter `key` (zero if absent).
    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// Current value of gauge `key`.
    pub fn gauge(&self, key: &str) -> Option<f64> {
        self.gauges.get(key).copied()
    }

    /// Histogram under `key`, if any.
    pub fn histogram(&self, key: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(key)
    }

    /// Sorted iterator over counters.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Sorted iterator over gauges.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Merges another registry: counters add, gauges take the maximum,
    /// histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            self.inc(k, *v);
        }
        for (k, v) in &other.gauges {
            self.max_gauge(k, *v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                Some(mine) => mine.merge(h),
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
            }
        }
    }

    /// Deterministic text rendering: one `kind key value` line per metric,
    /// sorted by key within each kind.
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        for (k, v) in &self.counters {
            out.push(format!("counter {k} {v}"));
        }
        for (k, v) in &self.gauges {
            out.push(format!("gauge {k} {v:.6}"));
        }
        for (k, h) in &self.histograms {
            out.push(format!(
                "histogram {k} count={} mean_us={:.3} max_us={:.3}",
                h.count(),
                h.mean().as_us(),
                h.max().as_us()
            ));
        }
        out
    }
}

// BTreeMap has no entry API taking &str without allocating; this tiny
// extension avoids the allocation on the hot increment path when the key
// already exists.
trait EntryRefExt {
    fn entry_ref_or_insert(&mut self, key: &str) -> Option<&mut u64>;
}

impl EntryRefExt for BTreeMap<String, u64> {
    fn entry_ref_or_insert(&mut self, key: &str) -> Option<&mut u64> {
        if !self.contains_key(key) {
            self.insert(key.to_string(), 0);
        }
        self.get_mut(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn traced<F: FnOnce(&mut Tracer)>(f: F) -> Vec<TraceRecord> {
        let buf = SharedBuf::new();
        let mut tr = Tracer::to_sink(Box::new(JsonlSink::new(buf.clone())));
        f(&mut tr);
        tr.flush();
        TraceRecord::parse_jsonl(&buf.contents()).expect("own output parses")
    }

    #[test]
    fn roundtrip_all_record_kinds() {
        let recs = traced(|tr| {
            let a = tr.span_begin(SimTime::ZERO, "request", None, None, Some(3), Some(65536));
            let b = tr.span_begin(
                SimTime::from_us(1),
                "sense",
                Some(a),
                Some("die:2"),
                Some(3),
                None,
            );
            tr.counter(SimTime::from_us(2), "pages.sensed", 4);
            tr.gauge(SimTime::from_us(2), "die.qdepth", 2.0);
            tr.state(SimTime::from_us(3), "chan:0", "ECCWAIT");
            tr.span_end(SimTime::from_us(4), b);
            tr.span_end(SimTime::from_us(5), a);
        });
        assert_eq!(recs.len(), 7);
        assert_eq!(
            recs[0],
            TraceRecord::SpanBegin {
                t: SimTime::ZERO,
                name: "request".into(),
                id: 1,
                parent: None,
                res: None,
                req: Some(3),
                bytes: Some(65536),
            }
        );
        assert_eq!(
            recs[1],
            TraceRecord::SpanBegin {
                t: SimTime::from_us(1),
                name: "sense".into(),
                id: 2,
                parent: Some(1),
                res: Some("die:2".into()),
                req: Some(3),
                bytes: None,
            }
        );
        assert_eq!(
            recs[4],
            TraceRecord::State {
                t: SimTime::from_us(3),
                res: "chan:0".into(),
                state: "ECCWAIT".into(),
            }
        );
        assert_eq!(
            recs[6],
            TraceRecord::SpanEnd {
                t: SimTime::from_us(5),
                id: 1
            }
        );
    }

    #[test]
    fn disabled_tracer_emits_nothing_and_returns_zero_ids() {
        let mut tr = Tracer::disabled();
        assert!(!tr.enabled());
        let id = tr.span_begin(SimTime::ZERO, "request", None, None, None, None);
        assert_eq!(id, 0);
        tr.span_end(SimTime::ZERO, id);
        tr.counter(SimTime::ZERO, "x", 1);
        tr.flush();
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let recs = traced(|tr| {
            for _ in 0..10 {
                let id = tr.span_begin(SimTime::ZERO, "s", None, None, None, None);
                tr.span_end(SimTime::ZERO, id);
            }
        });
        let mut seen = std::collections::HashSet::new();
        for r in &recs {
            if let TraceRecord::SpanBegin { id, .. } = r {
                assert!(*id > 0);
                assert!(seen.insert(*id), "duplicate span id {id}");
            }
        }
        assert_eq!(seen.len(), 10);
    }

    #[test]
    fn json_strings_are_escaped() {
        let recs = traced(|tr| {
            tr.counter(SimTime::ZERO, "weird\"key\\with\nstuff", 1);
        });
        assert_eq!(
            recs[0],
            TraceRecord::Counter {
                t: SimTime::ZERO,
                key: "weird\"key\\with\nstuff".into(),
                delta: 1
            }
        );
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        for (bad, why) in [
            ("{\"t\":0}", "missing e"),
            ("{\"t\":0,\"e\":\"b\",\"id\":1}", "missing name"),
            ("{\"t\":0,\"e\":\"zz\"}", "unknown type"),
            ("not json", "not an object"),
            ("{\"e\":\"c\",\"k\":\"x\",\"v\":1}", "missing t"),
            (
                "{\"t\":0,\"e\":\"c\",\"k\":\"x\",\"v\":-3}",
                "negative count",
            ),
        ] {
            let err = TraceRecord::parse_jsonl(bad).expect_err(why);
            assert_eq!(err.line, 1, "{why}: {err}");
        }
        // The error carries the right line number.
        let ok_then_bad = "{\"t\":0,\"e\":\"e\",\"id\":1}\n\nbroken\n";
        assert_eq!(TraceRecord::parse_jsonl(ok_then_bad).unwrap_err().line, 3);
    }

    #[test]
    fn parse_accepts_unicode_escapes() {
        let recs = TraceRecord::parse_jsonl(
            "{\"t\":5,\"e\":\"s\",\"res\":\"\\u0063han:0\",\"st\":\"IDLE\"}",
        )
        .unwrap();
        assert_eq!(
            recs[0],
            TraceRecord::State {
                t: SimTime::from_ns(5),
                res: "chan:0".into(),
                state: "IDLE".into(),
            }
        );
    }

    #[test]
    fn metrics_registry_basics() {
        let mut m = MetricsRegistry::new();
        m.inc("a.count", 2);
        m.inc("a.count", 3);
        m.set_gauge("b.util", 0.5);
        m.set_gauge("b.util", 0.7);
        m.max_gauge("c.peak", 4.0);
        m.max_gauge("c.peak", 2.0);
        m.observe("d.lat", SimDuration::from_us(10));
        assert_eq!(m.counter("a.count"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.gauge("b.util"), Some(0.7));
        assert_eq!(m.gauge("c.peak"), Some(4.0));
        assert_eq!(m.histogram("d.lat").unwrap().count(), 1);
    }

    #[test]
    fn metrics_lines_are_sorted_and_deterministic() {
        let mut m = MetricsRegistry::new();
        m.inc("z", 1);
        m.inc("a", 1);
        m.set_gauge("mid", 1.0);
        let lines = m.lines();
        assert_eq!(lines[0], "counter a 1");
        assert_eq!(lines[1], "counter z 1");
        assert!(lines[2].starts_with("gauge mid"));
        assert_eq!(m.lines(), lines);
    }

    #[test]
    fn metrics_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.inc("c", 1);
        a.observe("h", SimDuration::from_us(1));
        let mut b = MetricsRegistry::new();
        b.inc("c", 2);
        b.inc("only_b", 7);
        b.observe("h", SimDuration::from_us(3));
        b.max_gauge("g", 9.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.counter("only_b"), 7);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.gauge("g"), Some(9.0));
    }

    #[test]
    fn labeled_formats_key() {
        assert_eq!(
            labeled("retries.in_die", "RiFSSD"),
            "retries.in_die{RiFSSD}"
        );
    }

    #[test]
    fn shared_buf_clones_share_contents() {
        let a = SharedBuf::new();
        let mut b = a.clone();
        use std::io::Write as _;
        b.write_all(b"hello").unwrap();
        assert_eq!(a.contents(), "hello");
    }
}
