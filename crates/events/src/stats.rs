//! Measurement utilities: counters, running moments, latency histograms and
//! time-weighted state trackers.
//!
//! [`LatencyHistogram`] backs Fig. 19 (read-latency CDF and tail
//! percentiles); [`UtilizationTracker`] backs Fig. 18 (channel usage
//! breakdown into IDLE / COR / UNCOR / ECCWAIT).

use std::fmt;

use crate::time::{SimDuration, SimTime};

/// A simple named event counter.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Counter {
    count: u64,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn hit(&mut self) {
        self.count += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.count += n;
    }

    /// Current value.
    pub fn value(&self) -> u64 {
        self.count
    }
}

/// Streaming mean/variance/min/max (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`None` if empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }

    /// Maximum observation (`None` if empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merges another accumulator into this one.
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * self.n as f64 * other.n as f64 / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically from 100 ns, giving <5 % relative error across
/// the 1 µs – 10 ms range the SSD simulator produces — ample for the CDF
/// curves and p99/p99.9/p99.99 tail figures of the paper (Fig. 19).
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: Vec<u64>,
    total: u64,
    sum_ns: u128,
    max_ns: u64,
    min_ns: u64,
}

const HIST_BASE_NS: f64 = 100.0;
const HIST_GROWTH: f64 = 1.04;
const HIST_BUCKETS: usize = 512;

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: vec![0; HIST_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
            min_ns: u64::MAX,
        }
    }

    fn bucket_of(ns: u64) -> usize {
        if ns == 0 {
            return 0;
        }
        let idx = ((ns as f64 / HIST_BASE_NS).ln() / HIST_GROWTH.ln()).floor();
        idx.max(0.0).min((HIST_BUCKETS - 1) as f64) as usize
    }

    fn bucket_upper_ns(idx: usize) -> u64 {
        (HIST_BASE_NS * HIST_GROWTH.powi(idx as i32 + 1)) as u64
    }

    /// Records one latency observation.
    pub fn record(&mut self, latency: SimDuration) {
        let ns = latency.as_ns();
        self.buckets[Self::bucket_of(ns)] += 1;
        self.total += 1;
        self.sum_ns += ns as u128;
        self.max_ns = self.max_ns.max(ns);
        self.min_ns = self.min_ns.min(ns);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency (zero if empty).
    pub fn mean(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ns((self.sum_ns / self.total as u128) as u64)
        }
    }

    /// Largest recorded latency (zero if empty).
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ns(self.max_ns)
    }

    /// Smallest recorded latency (zero if empty).
    pub fn min(&self) -> SimDuration {
        if self.total == 0 {
            SimDuration::ZERO
        } else {
            SimDuration::from_ns(self.min_ns)
        }
    }

    /// Latency at percentile `p` in `[0, 100]`, or `None` when empty.
    ///
    /// Returns the upper edge of the bucket containing the p-th observation,
    /// so the result is an upper bound with the bucket's relative error.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> Option<SimDuration> {
        assert!((0.0..=100.0).contains(&p), "percentile {p} out of range");
        if self.total == 0 {
            return None;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(SimDuration::from_ns(
                    Self::bucket_upper_ns(i).min(self.max_ns),
                ));
            }
        }
        Some(SimDuration::from_ns(self.max_ns))
    }

    /// Empirical CDF as `(latency_upper_bound, cumulative_fraction)` pairs
    /// over non-empty buckets; used to print Fig. 19.
    pub fn cdf(&self) -> Vec<(SimDuration, f64)> {
        let mut out = Vec::new();
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            seen += c;
            out.push((
                SimDuration::from_ns(Self::bucket_upper_ns(i).min(self.max_ns)),
                seen as f64 / self.total as f64,
            ));
        }
        out
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
        self.sum_ns += other.sum_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
    }
}

/// Tracks how long a component spends in each of a fixed set of states.
///
/// The SSD simulator instantiates one per flash channel with the four states
/// of Fig. 18 (IDLE, COR, UNCOR, ECCWAIT). State indices are caller-defined.
#[derive(Debug, Clone)]
pub struct UtilizationTracker {
    state: usize,
    since: SimTime,
    accum: Vec<SimDuration>,
}

impl UtilizationTracker {
    /// Creates a tracker over `n_states` states, starting in state 0 at time
    /// zero.
    ///
    /// # Panics
    ///
    /// Panics if `n_states == 0`.
    pub fn new(n_states: usize) -> Self {
        assert!(n_states > 0, "tracker needs at least one state");
        UtilizationTracker {
            state: 0,
            since: SimTime::ZERO,
            accum: vec![SimDuration::ZERO; n_states],
        }
    }

    /// Current state index.
    pub fn state(&self) -> usize {
        self.state
    }

    /// Switches to `state` at instant `now`, attributing the elapsed span to
    /// the previous state.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range or `now` precedes the last switch.
    pub fn switch(&mut self, now: SimTime, state: usize) {
        assert!(state < self.accum.len(), "state {state} out of range");
        self.accum[self.state] += now.since(self.since);
        self.state = state;
        self.since = now;
    }

    /// Closes accounting at `end` and returns the per-state durations.
    pub fn finish(mut self, end: SimTime) -> Vec<SimDuration> {
        self.accum[self.state] += end.since(self.since);
        self.accum
    }

    /// Per-state fractions of the interval `[0, end]`.
    pub fn fractions(self, end: SimTime) -> Vec<f64> {
        let total = end.as_ns().max(1) as f64;
        self.finish(end)
            .into_iter()
            .map(|d| d.as_ns() as f64 / total)
            .collect()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} sd={:.4}",
            self.n,
            self.mean(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_counts() {
        let mut c = Counter::new();
        c.hit();
        c.add(4);
        assert_eq!(c.value(), 5);
    }

    #[test]
    fn running_stats_moments() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_merge_equals_combined() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = RunningStats::new();
        for &x in &data {
            whole.push(x);
        }
        let mut a = RunningStats::new();
        let mut b = RunningStats::new();
        for &x in &data[..37] {
            a.push(x);
        }
        for &x in &data[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_percentiles_bracket_data() {
        let mut h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record(SimDuration::from_us(us));
        }
        let p50 = h.percentile(50.0).unwrap().as_us();
        let p99 = h.percentile(99.0).unwrap().as_us();
        assert!((450.0..600.0).contains(&p50), "p50 {p50}");
        assert!((950.0..1050.0).contains(&p99), "p99 {p99}");
        assert_eq!(h.percentile(100.0).unwrap(), h.max());
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn histogram_relative_error_bounded() {
        let mut h = LatencyHistogram::new();
        let true_val = SimDuration::from_us(777);
        for _ in 0..100 {
            h.record(true_val);
        }
        let p = h.percentile(50.0).unwrap().as_us();
        assert!((p - 777.0).abs() / 777.0 < 0.05, "p {p}");
    }

    #[test]
    fn histogram_empty_and_merge() {
        let mut a = LatencyHistogram::new();
        assert!(a.percentile(99.0).is_none());
        assert_eq!(a.mean(), SimDuration::ZERO);
        let mut b = LatencyHistogram::new();
        b.record(SimDuration::from_us(5));
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert!(a.percentile(50.0).is_some());
    }

    #[test]
    fn histogram_cdf_monotone_and_complete() {
        let mut h = LatencyHistogram::new();
        for us in [10u64, 20, 20, 40, 80, 160] {
            h.record(SimDuration::from_us(us));
        }
        let cdf = h.cdf();
        assert!(!cdf.is_empty());
        let mut last = 0.0;
        for &(_, f) in &cdf {
            assert!(f >= last);
            last = f;
        }
        assert!((last - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_fractions_sum_to_one() {
        let mut u = UtilizationTracker::new(3);
        u.switch(SimTime::from_us(10), 1); // state 0 for 10us
        u.switch(SimTime::from_us(30), 2); // state 1 for 20us
        u.switch(SimTime::from_us(60), 0); // state 2 for 30us
        let f = u.fractions(SimTime::from_us(100)); // state 0 for 40 more
        assert!((f[0] - 0.5).abs() < 1e-12);
        assert!((f[1] - 0.2).abs() < 1e-12);
        assert!((f[2] - 0.3).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_finish_durations() {
        let mut u = UtilizationTracker::new(2);
        u.switch(SimTime::from_us(5), 1);
        let d = u.finish(SimTime::from_us(8));
        assert_eq!(d[0], SimDuration::from_us(5));
        assert_eq!(d[1], SimDuration::from_us(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn utilization_rejects_bad_state() {
        let mut u = UtilizationTracker::new(2);
        u.switch(SimTime::from_us(1), 5);
    }
}
