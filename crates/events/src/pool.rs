//! A dependency-free worker pool for deterministic Monte-Carlo fan-out.
//!
//! The figure-reproduction binaries run thousands of independent
//! encode → corrupt → decode trials. [`parallel_trials`] spreads them over
//! `std::thread::scope` workers while keeping the output *bit-identical*
//! for every thread count:
//!
//! * each trial is addressed by its index and must derive all randomness
//!   from that index (see [`crate::SimRng::stream`]), never from which
//!   worker runs it;
//! * results are collected by trial index, so the returned `Vec` is in
//!   trial order no matter how the scheduler interleaved the workers.
//!
//! Work is handed out through an atomic cursor (work stealing by index),
//! so a straggler trial — e.g. a decode hitting the iteration cap — does
//! not idle the other workers.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Runs `trials` independent tasks on up to `threads` workers and returns
/// their results in trial order.
///
/// `task(i)` must be a pure function of the trial index `i` (plus shared
/// read-only captures); under that contract the output is identical for
/// every `threads` value, including 1 (which runs inline with no thread
/// spawn at all).
///
/// `threads == 0` is treated as 1. The pool never spawns more workers than
/// trials.
pub fn parallel_trials<T, F>(threads: usize, trials: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let workers = threads.max(1).min(trials);
    if workers <= 1 {
        return (0..trials).map(task).collect();
    }

    let cursor = AtomicUsize::new(0);
    let mut slots: Vec<Option<T>> = (0..trials).map(|_| None).collect();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= trials {
                        break;
                    }
                    local.push((i, task(i)));
                }
                local
            }));
        }
        for h in handles {
            for (i, v) in h.join().expect("worker thread panicked") {
                slots[i] = Some(v);
            }
        }
    });
    slots
        .into_iter()
        .map(|s| s.expect("every trial index is claimed exactly once"))
        .collect()
}

/// Convenience fold over [`parallel_trials`]: runs the trials in parallel,
/// then reduces the per-trial results *sequentially in trial order*, which
/// keeps floating-point accumulation deterministic.
pub fn parallel_fold<T, A, F, R>(threads: usize, trials: usize, task: F, init: A, reduce: R) -> A
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    R: FnMut(A, T) -> A,
{
    parallel_trials(threads, trials, task)
        .into_iter()
        .fold(init, reduce)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn results_are_in_trial_order() {
        let out = parallel_trials(4, 100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn identical_across_thread_counts() {
        let run = |threads| {
            parallel_trials(threads, 64, |i| {
                let mut rng = SimRng::stream(7, i as u64);
                (0..100)
                    .map(|_| rng.next_u64())
                    .fold(0u64, u64::wrapping_add)
            })
        };
        let single = run(1);
        for threads in [2, 3, 8, 16] {
            assert_eq!(run(threads), single, "threads = {threads}");
        }
    }

    #[test]
    fn zero_threads_behaves_like_one() {
        assert_eq!(parallel_trials(0, 5, |i| i), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn zero_trials_is_empty() {
        let out: Vec<u32> = parallel_trials(8, 0, |_| unreachable!());
        assert!(out.is_empty());
    }

    #[test]
    fn every_trial_runs_exactly_once() {
        let count = AtomicUsize::new(0);
        let out = parallel_trials(8, 1000, |i| {
            count.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(count.load(Ordering::Relaxed), 1000);
        assert_eq!(out.len(), 1000);
        assert!(out.iter().enumerate().all(|(i, &v)| i == v));
    }

    #[test]
    fn fold_accumulates_in_order() {
        // 0,1,2,...,9 folded as decimal digits.
        let s = parallel_fold(4, 10, |i| i as u64, 0u64, |acc, v| acc * 10 + v);
        assert_eq!(s, 123_456_789);
    }

    #[test]
    fn panics_in_workers_propagate() {
        let result = std::panic::catch_unwind(|| {
            parallel_trials(4, 16, |i| {
                if i == 7 {
                    panic!("boom");
                }
                i
            })
        });
        assert!(result.is_err());
    }
}
