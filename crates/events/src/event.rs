//! A deterministic discrete-event queue.
//!
//! Events scheduled at the same instant are delivered in FIFO scheduling
//! order (a monotonically increasing sequence number breaks ties), which
//! keeps simulations reproducible regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (then
        // first-scheduled) entry is popped first.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A time-ordered event queue driving a discrete-event simulation.
///
/// # Example
///
/// ```
/// use rif_events::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_us(2), "b");
/// q.schedule(SimTime::from_us(1), "a");
/// q.schedule(SimTime::from_us(2), "c"); // same instant as "b", FIFO after it
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["a", "b", "c"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The instant of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for delivery at instant `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock — scheduling into the
    /// past indicates a causality bug.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "scheduling into the past: at={at:?} now={:?}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, payload });
    }

    /// Removes and returns the next event, advancing the clock to its
    /// timestamp. Returns `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.payload))
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(30), 3);
        q.schedule(SimTime::from_us(10), 1);
        q.schedule(SimTime::from_us(20), 2);
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, [1, 2, 3]);
    }

    #[test]
    fn ties_resolve_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule(SimTime::from_us(7), i);
        }
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        let want: Vec<_> = (0..100).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(5), ());
        q.schedule(SimTime::from_us(5), ());
        q.schedule(SimTime::from_us(9), ());
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(10), ());
        q.pop();
        q.schedule(SimTime::from_us(5), ());
    }

    #[test]
    fn len_and_peek() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_us(4), ());
        q.schedule(SimTime::from_us(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2)));
    }

    #[test]
    fn interleaved_schedule_and_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_us(1), "a");
        let (t, _) = q.pop().unwrap();
        q.schedule(t + crate::SimDuration::from_us(1), "b");
        q.schedule(t + crate::SimDuration::from_us(3), "d");
        q.schedule(t + crate::SimDuration::from_us(2), "c");
        let got: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(got, ["b", "c", "d"]);
    }
}
