//! Discrete-event simulation kernel shared by every crate of the RiF
//! reproduction.
//!
//! The paper evaluates RiF with an extended MQSim-E, a discrete-event SSD
//! simulator. This crate provides the equivalent substrate: a nanosecond
//! [`SimTime`] clock, a deterministic [`EventQueue`], seedable random-number
//! helpers ([`rng`]), and measurement utilities ([`stats`]) such as latency
//! histograms and time-weighted utilization trackers.
//!
//! # Example
//!
//! ```
//! use rif_events::{EventQueue, SimTime};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::from_us(40), "sense-done");
//! q.schedule(SimTime::from_us(13), "dma-done");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(ev, "dma-done");
//! assert_eq!(t, SimTime::from_us(13));
//! ```

pub mod event;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod trace;

pub use event::EventQueue;
pub use pool::{parallel_fold, parallel_trials};
pub use rng::{SimRng, ZipfTable};
pub use stats::{Counter, LatencyHistogram, RunningStats, UtilizationTracker};
pub use time::{SimDuration, SimTime};
pub use trace::{JsonlSink, MetricsRegistry, SharedBuf, TraceRecord, TraceSink, Tracer};
