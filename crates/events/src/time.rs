//! Simulation clock types.
//!
//! All timing constants in the paper are given in microseconds or
//! milliseconds (tR = 40 µs, tDMA = 13 µs, tBERS = 3.5 ms, ...). We keep the
//! clock in integer nanoseconds so that every latency in Table I is exactly
//! representable and event ordering is deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
///
/// # Example
///
/// ```
/// use rif_events::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_us(40);
/// assert_eq!(t.as_ns(), 40_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinite" deadline sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the origin.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the origin.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the origin.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the origin.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the origin.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds since the origin (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds since the origin (fractional).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self` (a causality bug in the
    /// caller's event handling).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            earlier.0 <= self.0,
            "SimTime::since: earlier ({earlier:?}) is after self ({self:?})"
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Saturating version of [`SimTime::since`], returning zero when
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration of `ns` nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration of `us` microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration of `ms` milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration of `s` seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional microseconds, rounding to the
    /// nearest nanosecond.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us >= 0.0, "duration must be non-negative, got {us}");
        SimDuration((us * 1e3).round() as u64)
    }

    /// Duration needed to move `bytes` over a link of `bytes_per_sec`
    /// bandwidth, rounded up to the next nanosecond.
    ///
    /// This is how tDMA is derived from the 1.2 GB/s channel bandwidth: a
    /// 16-KiB page takes ≈13 µs.
    pub fn from_transfer(bytes: u64, bytes_per_sec: u64) -> Self {
        assert!(bytes_per_sec > 0, "bandwidth must be positive");
        let ns = (bytes as u128 * 1_000_000_000u128).div_ceil(bytes_per_sec as u128);
        SimDuration(ns as u64)
    }

    /// Nanoseconds in this duration.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds in this duration (fractional).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Seconds in this duration (fractional).
    pub fn as_secs(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// True when the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}us", self.as_us())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µs", self.as_us())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_us())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} µs", self.as_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree_on_scale() {
        assert_eq!(SimTime::from_us(1).as_ns(), 1_000);
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_secs(1).as_ns(), 1_000_000_000);
        assert_eq!(SimDuration::from_us(40).as_us(), 40.0);
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = SimTime::from_us(100);
        let d = SimDuration::from_us(13);
        assert_eq!((t + d).since(t), d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn transfer_time_matches_table1_tdma() {
        // 16-KiB page over a 1.2 GB/s channel ≈ 13.65 µs (paper rounds to 13).
        let d = SimDuration::from_transfer(16 * 1024, 1_200_000_000);
        assert!((d.as_us() - 13.653).abs() < 0.01, "got {}", d.as_us());
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 B/s needs 333333333.3 ns -> must round up.
        let d = SimDuration::from_transfer(1, 3);
        assert_eq!(d.as_ns(), 333_333_334);
    }

    #[test]
    fn saturating_since_is_zero_for_future() {
        let a = SimTime::from_us(5);
        let b = SimTime::from_us(9);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_us(4));
    }

    #[test]
    #[should_panic(expected = "earlier")]
    fn since_panics_on_causality_violation() {
        let _ = SimTime::from_us(1).since(SimTime::from_us(2));
    }

    #[test]
    fn duration_arithmetic() {
        let d = SimDuration::from_us(10);
        assert_eq!(d * 3, SimDuration::from_us(30));
        assert_eq!(d / 2, SimDuration::from_us(5));
        let total: SimDuration = vec![d, d, d].into_iter().sum();
        assert_eq!(total, SimDuration::from_us(30));
        assert_eq!(
            d.saturating_sub(SimDuration::from_us(20)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn display_formats_microseconds() {
        assert_eq!(format!("{}", SimDuration::from_us(40)), "40.000 µs");
        assert_eq!(format!("{}", SimTime::from_ns(1500)), "1.500 µs");
    }
}
