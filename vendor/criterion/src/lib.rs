//! A vendored, offline subset of the [criterion](https://docs.rs/criterion)
//! API — just enough for this workspace's benches to compile and run.
//!
//! Each benchmark is a warmup pass followed by timed batches; the harness
//! prints the mean ns/iter (plus derived element throughput when declared
//! via [`Throughput`]). There is no statistical analysis, outlier
//! rejection, plotting, or baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque hint that stops the optimizer from deleting a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    iters_hint: u64,
    /// Mean duration of one iteration, filled in by [`Bencher::iter`].
    elapsed_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, recording the mean wall-clock ns per call.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Untimed warmup so lazy initialisation doesn't pollute the timing.
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.iters_hint {
            black_box(routine());
        }
        let total = start.elapsed();
        self.elapsed_per_iter = total.as_secs_f64() * 1e9 / self.iters_hint as f64;
    }
}

/// Declared work-per-iteration, used to derive throughput lines.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one parameterised benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `group/function/parameter` style id.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id naming only the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Top-level benchmark harness.
pub struct Criterion {
    iters: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { iters: 30 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let per_iter = run_once(self.iters, &mut f);
        report(name, per_iter, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            harness: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }
}

/// Group of benchmarks sharing a name, throughput, and sample size.
pub struct BenchmarkGroup<'a> {
    harness: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Declares how much work each iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the timed-iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs one parameterised benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let iters = self.sample_size.map_or(self.harness.iters, |n| n as u64);
        let per_iter = run_once(iters, &mut |b: &mut Bencher| f(b, input));
        report(
            &format!("{}/{}", self.name, id.id),
            per_iter,
            self.throughput,
        );
        self
    }

    /// Runs an unparameterised benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let iters = self.sample_size.map_or(self.harness.iters, |n| n as u64);
        let per_iter = run_once(iters, &mut f);
        report(&format!("{}/{name}", self.name), per_iter, self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn run_once<F: FnMut(&mut Bencher)>(iters: u64, f: &mut F) -> f64 {
    let mut bencher = Bencher {
        iters_hint: iters.max(1),
        elapsed_per_iter: 0.0,
    };
    f(&mut bencher);
    bencher.elapsed_per_iter
}

fn report(name: &str, per_iter_ns: f64, throughput: Option<Throughput>) {
    let rate = match throughput {
        Some(Throughput::Elements(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.3e} elem/s)", n as f64 * 1e9 / per_iter_ns)
        }
        Some(Throughput::Bytes(n)) if per_iter_ns > 0.0 => {
            format!("  ({:.3e} B/s)", n as f64 * 1e9 / per_iter_ns)
        }
        _ => String::new(),
    };
    println!("bench {name:<48} {per_iter_ns:>14.1} ns/iter{rate}");
}

/// Formats a human-readable duration (compat helper).
pub fn format_duration(d: Duration) -> String {
    format!("{:.3} ms", d.as_secs_f64() * 1e3)
}

/// Declares a group of benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut harness = $crate::Criterion::default();
            $( $target(&mut harness); )+
        }
    };
}

/// Declares the bench entry point running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sum_bench(c: &mut Criterion) {
        c.bench_function("sum_small", |b| {
            b.iter(|| (0..100u64).map(black_box).sum::<u64>())
        });
    }

    criterion_group!(unit_group, sum_bench);

    #[test]
    fn group_runs_and_times() {
        unit_group();
    }

    #[test]
    fn grouped_benches_run() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.throughput(Throughput::Elements(128)).sample_size(10);
        g.bench_with_input(BenchmarkId::from_parameter(128usize), &128usize, |b, &n| {
            b.iter(|| (0..n as u64).sum::<u64>())
        });
        g.finish();
    }
}
