//! A vendored, offline subset of the [proptest](https://docs.rs/proptest)
//! API — just enough surface for this workspace's property suites.
//!
//! Differences from real proptest, by design:
//!
//! * case generation is **deterministic** (seeded from the test's module
//!   path and name), so failures reproduce without a persistence file;
//! * there is **no shrinking** — a failing case panics with the assertion
//!   message and the case index;
//! * strategies are plain value generators (no value trees).

use std::marker::PhantomData;
use std::ops::Range;

/// Runner internals used by the [`proptest!`] macro expansion.
pub mod test_runner {
    /// Deterministic per-case generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Builds the RNG for case `case` of the test named `name`.
        pub fn deterministic(name: &str, case: u32) -> TestRng {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            }
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)` (widening-multiply map; bias is
        /// negligible for test-case generation).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A value generator. The subset keeps proptest's associated-type shape so
/// `impl Strategy<Value = T>` signatures work unchanged.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a full-domain uniform generator, for [`any`].
pub trait ArbitraryValue {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($ty:ty),*) => {
        $(impl ArbitraryValue for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        })*
    };
}
arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl ArbitraryValue for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy over a type's whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Generates uniformly over `T`'s domain (`any::<u64>()`, `any::<bool>()`).
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! range_strategy_int {
    ($($ty:ty),*) => {
        $(impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $ty
            }
        })*
    };
}
range_strategy_int!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (self.end - self.start) * rng.next_f64()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+);)*) => {
        $(impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        })*
    };
}
tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

/// The `prop` namespace (`prop::collection::vec`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Element-count specification for [`vec`]: an exact length or a
        /// half-open range.
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<std::ops::Range<usize>> for SizeRange {
            fn from(r: std::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy generating `Vec`s of `elem` values.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            size: SizeRange,
        }

        /// `Vec` strategy with `size` elements (exact count or range).
        pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                elem,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span.max(1)) as usize;
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for __case in 0..config.cases {
                    let mut __rng = $crate::test_runner::TestRng::deterministic(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(
                        let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                    )*
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name( $($arg in $strat),* ) $body
            )*
        }
    };
}

/// The glob-import surface matching `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::test_runner::TestRng;
    pub use crate::{any, Any, ArbitraryValue, Map, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("ranges", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(5usize..17), &mut rng);
            assert!((5..17).contains(&v));
            let f = Strategy::generate(&(0.25f64..0.75), &mut rng);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_sizes() {
        let mut rng = TestRng::deterministic("vecs", 1);
        let exact = prop::collection::vec(any::<u64>(), 7usize);
        assert_eq!(Strategy::generate(&exact, &mut rng).len(), 7);
        let ranged = prop::collection::vec(any::<bool>(), 1..5);
        for _ in 0..100 {
            let len = Strategy::generate(&ranged, &mut rng).len();
            assert!((1..5).contains(&len));
        }
    }

    #[test]
    fn deterministic_per_name_and_case() {
        let a: Vec<u64> = {
            let mut r = TestRng::deterministic("x", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::deterministic("x", 3);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = TestRng::deterministic("x", 4);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u64..100, flag in any::<bool>()) {
            prop_assert!(x < 100);
            let _ = flag;
        }

        #[test]
        fn tuples_compose(pair in (any::<bool>(), 3u32..9)) {
            prop_assert!((3..9).contains(&pair.1), "got {:?}", pair);
        }
    }
}
