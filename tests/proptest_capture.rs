//! Property-based tests for the captured-trace CSV codec (run with
//! `--features proptest`).
//!
//! Two families:
//! - round-trip: serialize → parse → re-serialize is byte-identical for
//!   every capture the recorder can produce (monotonic times, non-empty
//!   requests);
//! - rejection: malformed rows — bad tenant, negative offset,
//!   non-monotonic time, wrong field counts, arbitrary garbage — are
//!   refused with a typed, line-numbered error, never a panic.

use proptest::prelude::*;
use rif_workloads::{Capture, CaptureOutcome, CapturedRequest, IoOp};

/// A capture with non-decreasing timestamps and non-empty requests, the
/// only shape the recorder emits: generated as (delta, body) pairs and
/// prefix-summed into absolute times.
fn capture_strategy() -> impl Strategy<Value = Capture> {
    prop::collection::vec(
        (
            0u64..10_000,      // arrival delta, µs
            0u8..2,            // op
            any::<u32>(),      // offset seed (kept small via cast)
            1u32..(1 << 20),   // bytes, never zero
            0u32..16,          // tenant
            (0u32..8, 0u8..2), // shard, outcome
        ),
        0..64,
    )
    .prop_map(|rows| {
        let mut t = 0u64;
        let records = rows
            .into_iter()
            .map(|(dt, op, offset, bytes, tenant, (shard, outcome))| {
                t += dt;
                CapturedRequest {
                    t_us: t,
                    op: if op == 0 { IoOp::Read } else { IoOp::Write },
                    offset: (offset as u64) << 12,
                    bytes,
                    tenant,
                    shard,
                    outcome: if outcome == 0 {
                        CaptureOutcome::Done
                    } else {
                        CaptureOutcome::Error
                    },
                }
            })
            .collect();
        Capture::new(records)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn csv_roundtrip_is_byte_identical(cap in capture_strategy()) {
        let csv = cap.to_csv();
        let parsed = Capture::parse_csv(&csv).expect("own output must parse");
        prop_assert_eq!(parsed.len(), cap.len());
        prop_assert_eq!(parsed.to_csv(), csv);
    }

    #[test]
    fn parse_survives_to_trace(cap in capture_strategy()) {
        // The parsed capture must convert to a simulator trace with one
        // request per row — the offline-replay path end to end.
        let parsed = Capture::parse_csv(&cap.to_csv()).expect("parse");
        prop_assert_eq!(parsed.to_trace().requests().len(), cap.len());
    }

    #[test]
    fn bad_tenant_is_rejected(cap in capture_strategy(), which in 0usize..4) {
        let tenant = ["x", "-1", "4294967296", "1.5"][which];
        let row = format!("0,R,0,4096,{tenant},0,done\n");
        // Appending after the last row may also trip the monotonic check;
        // a standalone capture of just the bad row isolates the field.
        let alone = format!("{}\n{}", rif_workloads::capture::CAPTURE_HEADER, row);
        prop_assert!(Capture::parse_csv(&alone).is_err(), "tenant {tenant:?} accepted");
        let doctored = format!("{}{}", cap.to_csv(), row);
        prop_assert!(Capture::parse_csv(&doctored).is_err()); // and never panics
    }

    #[test]
    fn negative_numbers_are_rejected(field in 0usize..4, cap in capture_strategy()) {
        // A minus sign in any numeric column (t, offset, bytes, tenant)
        // must be refused: the format is unsigned by construction.
        let mut cols = ["0", "R", "0", "4096", "0", "0", "done"].map(String::from);
        let idx = [0, 2, 3, 4][field];
        cols[idx] = format!("-{}", cols[idx]);
        let text = format!("{}\n{}\n", rif_workloads::capture::CAPTURE_HEADER, cols.join(","));
        prop_assert!(Capture::parse_csv(&text).is_err());
        let _ = cap; // keep the strategy exercised alongside
    }

    #[test]
    fn non_monotonic_time_is_rejected(cap in capture_strategy(), t in 1u64..1_000_000) {
        // Two rows with strictly decreasing timestamps must be refused.
        let text = format!(
            "{}\n{t},R,0,4096,0,0,done\n{},W,4096,4096,0,0,done\n",
            rif_workloads::capture::CAPTURE_HEADER,
            t - 1,
        );
        let e = Capture::parse_csv(&text).expect_err("decreasing time accepted");
        prop_assert!(e.to_string().contains("line 3"), "{e}");
        let _ = cap;
    }

    #[test]
    fn wrong_field_counts_are_rejected(n in 1usize..11) {
        let n = if n >= 7 { n + 1 } else { n }; // skip the valid width
        let row = vec!["0"; n].join(",");
        let text = format!("{}\n{row}\n", rif_workloads::capture::CAPTURE_HEADER);
        prop_assert!(Capture::parse_csv(&text).is_err(), "{n} fields accepted");
    }

    #[test]
    fn garbage_lines_never_panic(lines in prop::collection::vec(
        prop::collection::vec(0x20u8..0x7F, 0..40), 0..10
    )) {
        let body: String = lines
            .into_iter()
            .map(|b| String::from_utf8(b).expect("printable ascii") + "\n")
            .collect();
        // Any outcome is fine — parse must simply return.
        let _ = Capture::parse_csv(&body);
        let _ = Capture::parse_csv(&format!(
            "{}\n{body}",
            rif_workloads::capture::CAPTURE_HEADER
        ));
    }
}
