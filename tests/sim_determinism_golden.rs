//! Golden determinism: the same seed and trace must yield byte-identical
//! canonical reports AND byte-identical trace logs, no matter how many
//! harness threads execute the trials. This is what makes the JSONL
//! traces usable as golden files and keeps every `--threads N` figure
//! run reproducible.

use rif_events::parallel_trials;
use rif_events::trace::{JsonlSink, SharedBuf};
use rif_events::{SimDuration, SimTime};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::{SynthConfig, Trace};

/// One fully-observed run: returns the canonical report JSON and the
/// raw JSONL trace log.
fn golden_run(retry: RetryKind, seed: u64) -> (String, String) {
    let trace = SynthConfig {
        read_ratio: 0.8,
        cold_read_ratio: 0.5,
        ..SynthConfig::default()
    }
    .generate(120, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(&trace);
    (report.to_json(), buf.contents())
}

/// Trial `i` exercises a distinct (scheme, seed) pair so the comparison
/// covers every retry engine, not just one code path.
fn trial(i: usize) -> (String, String) {
    let retry = RetryKind::ALL[i % RetryKind::ALL.len()];
    golden_run(retry, 100 + i as u64)
}

#[test]
fn reports_and_traces_are_identical_across_thread_counts() {
    let n = RetryKind::ALL.len();
    let serial = parallel_trials(1, n, trial);
    let threaded = parallel_trials(8, n, trial);
    assert_eq!(serial.len(), threaded.len());
    for (i, (s, t)) in serial.iter().zip(threaded.iter()).enumerate() {
        let retry = RetryKind::ALL[i % n];
        assert!(!s.1.is_empty(), "trial {i} ({retry}) produced no trace");
        assert_eq!(s.0, t.0, "trial {i} ({retry}): report JSON diverged");
        assert_eq!(s.1, t.1, "trial {i} ({retry}): trace log diverged");
    }
}

#[test]
fn repeated_threaded_runs_are_stable() {
    let n = RetryKind::ALL.len();
    let first = parallel_trials(8, n, trial);
    let second = parallel_trials(8, n, trial);
    assert_eq!(first, second, "back-to-back threaded runs must agree");
}

/// The trace and configuration shared by the stepper-equivalence trials.
fn equivalence_inputs(retry: RetryKind, seed: u64) -> (SsdConfig, Trace) {
    let trace = SynthConfig {
        read_ratio: 0.85,
        cold_read_ratio: 0.6,
        ..SynthConfig::default()
    }
    .generate(150, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    (cfg, trace)
}

#[test]
fn stepper_replay_matches_batch_run_byte_for_byte() {
    // Driving the stepper API with a whole trace up-front — submitted
    // once, then advanced in small fixed windows — must produce a
    // canonical report byte-identical to the legacy one-shot run() for
    // every (scheme, seed) pair tried. run() is a wrapper over the same
    // core, but this pins the stronger property: chunked advancement
    // cannot change a single event outcome.
    for retry in [RetryKind::Rif, RetryKind::Sentinel, RetryKind::RpSsd] {
        for seed in [11u64, 12, 13] {
            let (cfg, trace) = equivalence_inputs(retry, seed);
            let batch = Simulator::new(cfg.clone()).run(&trace).to_json();

            let mut sim = Simulator::new(cfg);
            for r in &trace {
                sim.submit(*r);
            }
            let mut horizon = SimTime::ZERO;
            let mut steps = 0usize;
            while sim.pending_events() > 0 {
                horizon = horizon + SimDuration::from_us(50);
                sim.advance_until(horizon);
                steps += 1;
            }
            assert!(
                steps > 10,
                "{retry:?}/{seed}: trace finished too fast to chunk"
            );
            let stepped = sim.finish().to_json();
            assert_eq!(batch, stepped, "{retry:?} seed {seed}: stepper diverged");
        }
    }
}

#[test]
fn stepper_completions_account_for_every_request() {
    let (cfg, trace) = equivalence_inputs(RetryKind::Rif, 21);
    let mut sim = Simulator::new(cfg);
    for r in &trace {
        sim.submit(*r);
    }
    // Drain in mid-flight chunks; the union must cover each id exactly
    // once, in non-decreasing completion time.
    let mut seen = vec![false; trace.len()];
    let mut last = SimTime::ZERO;
    let mut horizon = SimTime::ZERO;
    while sim.pending_events() > 0 {
        horizon = horizon + SimDuration::from_ms(1);
        sim.advance_until(horizon);
        for c in sim.drain_completions() {
            assert!(!seen[c.id as usize], "id {} completed twice", c.id);
            seen[c.id as usize] = true;
            assert!(c.finished >= last, "completions out of order");
            last = c.finished;
        }
    }
    assert!(seen.iter().all(|&s| s), "some requests never completed");
    assert_eq!(sim.unfinished_requests(), 0);
}

#[test]
fn report_json_is_byte_stable_for_a_fixed_run() {
    // Same (scheme, seed) twice in the same thread: the canonical
    // serializer has no ambient state (maps, pointers, time) to leak.
    let (a_json, a_trace) = golden_run(RetryKind::Rif, 7);
    let (b_json, b_trace) = golden_run(RetryKind::Rif, 7);
    assert_eq!(a_json, b_json);
    assert_eq!(a_trace, b_trace);
    // And a different seed genuinely changes the output, so the equality
    // checks above cannot pass vacuously.
    let (c_json, _) = golden_run(RetryKind::Rif, 8);
    assert_ne!(a_json, c_json);
}
