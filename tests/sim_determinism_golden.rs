//! Golden determinism: the same seed and trace must yield byte-identical
//! canonical reports AND byte-identical trace logs, no matter how many
//! harness threads execute the trials. This is what makes the JSONL
//! traces usable as golden files and keeps every `--threads N` figure
//! run reproducible.

use rif_events::parallel_trials;
use rif_events::trace::{JsonlSink, SharedBuf};
use rif_events::{SimDuration, SimTime};
use rif_ssd::{
    DriftClock, HybridConfig, LearnerConfig, LearningMode, MigrationPolicy, RetryKind, Simulator,
    SsdConfig,
};
use rif_workloads::{SynthConfig, Trace};

/// One fully-observed run: returns the canonical report JSON and the
/// raw JSONL trace log.
fn golden_run(retry: RetryKind, seed: u64) -> (String, String) {
    let trace = SynthConfig {
        read_ratio: 0.8,
        cold_read_ratio: 0.5,
        ..SynthConfig::default()
    }
    .generate(120, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(&trace);
    (report.to_json(), buf.contents())
}

/// Trial `i` exercises a distinct (scheme, seed) pair so the comparison
/// covers every retry engine, not just one code path.
fn trial(i: usize) -> (String, String) {
    let retry = RetryKind::ALL[i % RetryKind::ALL.len()];
    golden_run(retry, 100 + i as u64)
}

#[test]
fn reports_and_traces_are_identical_across_thread_counts() {
    let n = RetryKind::ALL.len();
    let serial = parallel_trials(1, n, trial);
    let threaded = parallel_trials(8, n, trial);
    assert_eq!(serial.len(), threaded.len());
    for (i, (s, t)) in serial.iter().zip(threaded.iter()).enumerate() {
        let retry = RetryKind::ALL[i % n];
        assert!(!s.1.is_empty(), "trial {i} ({retry}) produced no trace");
        assert_eq!(s.0, t.0, "trial {i} ({retry}): report JSON diverged");
        assert_eq!(s.1, t.1, "trial {i} ({retry}): trace log diverged");
    }
}

#[test]
fn repeated_threaded_runs_are_stable() {
    let n = RetryKind::ALL.len();
    let first = parallel_trials(8, n, trial);
    let second = parallel_trials(8, n, trial);
    assert_eq!(first, second, "back-to-back threaded runs must agree");
}

/// The trace and configuration shared by the stepper-equivalence trials.
fn equivalence_inputs(retry: RetryKind, seed: u64) -> (SsdConfig, Trace) {
    let trace = SynthConfig {
        read_ratio: 0.85,
        cold_read_ratio: 0.6,
        ..SynthConfig::default()
    }
    .generate(150, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    (cfg, trace)
}

#[test]
fn stepper_replay_matches_batch_run_byte_for_byte() {
    // Driving the stepper API with a whole trace up-front — submitted
    // once, then advanced in small fixed windows — must produce a
    // canonical report byte-identical to the legacy one-shot run() for
    // every (scheme, seed) pair tried. run() is a wrapper over the same
    // core, but this pins the stronger property: chunked advancement
    // cannot change a single event outcome.
    for retry in [RetryKind::Rif, RetryKind::Sentinel, RetryKind::RpSsd] {
        for seed in [11u64, 12, 13] {
            let (cfg, trace) = equivalence_inputs(retry, seed);
            let batch = Simulator::new(cfg.clone()).run(&trace).to_json();

            let mut sim = Simulator::new(cfg);
            for r in &trace {
                sim.submit(*r);
            }
            let mut horizon = SimTime::ZERO;
            let mut steps = 0usize;
            while sim.pending_events() > 0 {
                horizon = horizon + SimDuration::from_us(50);
                sim.advance_until(horizon);
                steps += 1;
            }
            assert!(
                steps > 10,
                "{retry:?}/{seed}: trace finished too fast to chunk"
            );
            let stepped = sim.finish().to_json();
            assert_eq!(batch, stepped, "{retry:?} seed {seed}: stepper diverged");
        }
    }
}

#[test]
fn stepper_completions_account_for_every_request() {
    let (cfg, trace) = equivalence_inputs(RetryKind::Rif, 21);
    let mut sim = Simulator::new(cfg);
    for r in &trace {
        sim.submit(*r);
    }
    // Drain in mid-flight chunks; the union must cover each id exactly
    // once, in non-decreasing completion time.
    let mut seen = vec![false; trace.len()];
    let mut last = SimTime::ZERO;
    let mut horizon = SimTime::ZERO;
    while sim.pending_events() > 0 {
        horizon = horizon + SimDuration::from_ms(1);
        sim.advance_until(horizon);
        for c in sim.drain_completions() {
            assert!(!seen[c.id as usize], "id {} completed twice", c.id);
            seen[c.id as usize] = true;
            assert!(c.finished >= last, "completions out of order");
            last = c.finished;
        }
    }
    assert!(seen.iter().all(|&s| s), "some requests never completed");
    assert_eq!(sim.unfinished_requests(), 0);
}

/// Oracle-mode reports are pinned to a checked-in golden file: any byte
/// drift in the seven schemes' canonical reports — from refactors of the
/// simulator, the retry engines, or the serializer — fails here until the
/// dump is intentionally regenerated and the diff reviewed:
///
/// ```sh
/// cargo run --release --example dump_oracle_golden > tests/golden/oracle_seed_reports.json
/// ```
#[test]
fn oracle_reports_match_pinned_golden() {
    let mut dump = String::new();
    for (i, retry) in RetryKind::ALL.into_iter().enumerate() {
        let seed = 100 + i as u64;
        let (json, trace) = golden_run(retry, seed);
        assert!(!trace.is_empty(), "{retry}: traced run produced no log");
        dump.push_str(&format!("=== {} seed {seed} ===\n", retry.label()));
        dump.push_str(&json);
    }
    let pinned = include_str!("golden/oracle_seed_reports.json");
    assert!(
        dump == pinned,
        "oracle reports drifted from tests/golden/oracle_seed_reports.json; \
         if the change is intentional, regenerate the dump and review the diff"
    );
}

/// One fully-observed *learned-mode* run: online threshold learning on,
/// the drift clock ageing data mid-run at `days_per_sec`.
fn learned_run(retry: RetryKind, days_per_sec: f64, seed: u64) -> (String, String) {
    let trace = SynthConfig {
        read_ratio: 0.9,
        cold_read_ratio: 0.6,
        ..SynthConfig::default()
    }
    .generate(120, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
    cfg.drift = DriftClock {
        days_per_sec,
        pe_per_sec: 0.0,
    };
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(&trace);
    (report.to_json(), buf.contents())
}

/// The learned-mode grid: three schemes spanning the learner's code
/// paths (in-die recal, predictor feedback, plain retries) × two drift
/// schedules (static and fast-ageing).
const LEARNED_GRID: [(RetryKind, f64); 6] = [
    (RetryKind::Rif, 0.0),
    (RetryKind::Rif, 400.0),
    (RetryKind::SwiftReadPlus, 0.0),
    (RetryKind::SwiftReadPlus, 400.0),
    (RetryKind::IdealOne, 0.0),
    (RetryKind::IdealOne, 400.0),
];

fn learned_trial(i: usize) -> (String, String) {
    let (retry, dps) = LEARNED_GRID[i % LEARNED_GRID.len()];
    learned_run(retry, dps, 300 + i as u64)
}

#[test]
fn learned_reports_identical_across_thread_counts_and_reruns() {
    let n = LEARNED_GRID.len();
    let serial = parallel_trials(1, n, learned_trial);
    let threaded = parallel_trials(8, n, learned_trial);
    let again = parallel_trials(8, n, learned_trial);
    for (i, (s, t)) in serial.iter().zip(threaded.iter()).enumerate() {
        let (retry, dps) = LEARNED_GRID[i];
        assert!(
            s.0.contains("\"learner\""),
            "{retry}/d{dps}: learned report missing learner summary"
        );
        assert!(!s.1.is_empty(), "{retry}/d{dps}: no trace log");
        assert_eq!(s.0, t.0, "{retry}/d{dps}: report JSON diverged");
        assert_eq!(s.1, t.1, "{retry}/d{dps}: trace log diverged");
    }
    assert_eq!(threaded, again, "back-to-back learned runs must agree");
}

#[test]
fn drift_schedule_actually_changes_learned_runs() {
    // Guard against the drift clock silently becoming a no-op, which
    // would let the grid above pass while testing half its intent.
    let (static_json, _) = learned_run(RetryKind::Rif, 0.0, 300);
    let (drifted_json, _) = learned_run(RetryKind::Rif, 400.0, 300);
    assert_ne!(static_json, drifted_json);
}

/// One fully-observed *hybrid-mode* run: SLC cache over QLC capacity,
/// background migrations draining under a write-heavy mix, and the drift
/// clock ageing data fast enough that refresh rewrites fire mid-run.
fn hybrid_run(seed: u64) -> (String, String) {
    let trace = SynthConfig {
        read_ratio: 0.4,
        cold_read_ratio: 0.5,
        hot_region_bytes: 4 << 20,
        cold_region_bytes: 64 << 20,
        ..SynthConfig::default()
    }
    .generate(150, seed);
    let mut cfg = SsdConfig::small(RetryKind::Rif, 1500);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    let mut hybrid = HybridConfig::slc_qlc();
    // Fifo instead of the reliability-aware gate: at this drift rate the
    // QLC destination RBER always exceeds the margin, which would
    // (correctly) starve migrations and leave the grid testing an idle
    // scheduler.
    hybrid.migration = MigrationPolicy::Fifo;
    hybrid.bg.high_watermark = 0.001;
    hybrid.bg.low_watermark = 0.0;
    // At this drift rate every slot is perpetually due; cap the scan
    // batch so the refresh stream stays below the dies' drain rate.
    hybrid.bg.refresh_scan_batch = 4;
    cfg.hybrid = Some(hybrid);
    cfg.drift = DriftClock {
        days_per_sec: 5e6,
        pe_per_sec: 0.0,
    };
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(&trace);
    (report.to_json(), buf.contents())
}

const HYBRID_SEEDS: [u64; 3] = [500, 501, 502];

fn hybrid_trial(i: usize) -> (String, String) {
    hybrid_run(HYBRID_SEEDS[i % HYBRID_SEEDS.len()])
}

#[test]
fn hybrid_reports_identical_across_thread_counts_and_reruns() {
    let n = HYBRID_SEEDS.len();
    let serial = parallel_trials(1, n, hybrid_trial);
    let threaded = parallel_trials(8, n, hybrid_trial);
    let again = parallel_trials(8, n, hybrid_trial);
    for (i, (s, t)) in serial.iter().zip(threaded.iter()).enumerate() {
        let seed = HYBRID_SEEDS[i];
        assert!(
            s.0.contains("\"hybrid\""),
            "seed {seed}: hybrid report missing hybrid summary"
        );
        assert!(!s.1.is_empty(), "seed {seed}: no trace log");
        assert_eq!(s.0, t.0, "seed {seed}: report JSON diverged");
        assert_eq!(s.1, t.1, "seed {seed}: trace log diverged");
    }
    assert_eq!(threaded, again, "back-to-back hybrid runs must agree");
    // The grid must actually exercise background traffic, or the
    // byte-equality above tests an idle scheduler.
    let (json, _) = serial[0].clone();
    assert!(
        !json.contains("\"migrated_slots\": 0,"),
        "seed {}: no migrations ran:\n{json}",
        HYBRID_SEEDS[0]
    );
}

#[test]
fn report_json_is_byte_stable_for_a_fixed_run() {
    // Same (scheme, seed) twice in the same thread: the canonical
    // serializer has no ambient state (maps, pointers, time) to leak.
    let (a_json, a_trace) = golden_run(RetryKind::Rif, 7);
    let (b_json, b_trace) = golden_run(RetryKind::Rif, 7);
    assert_eq!(a_json, b_json);
    assert_eq!(a_trace, b_trace);
    // And a different seed genuinely changes the output, so the equality
    // checks above cannot pass vacuously.
    let (c_json, _) = golden_run(RetryKind::Rif, 8);
    assert_ne!(a_json, c_json);
}
