//! Golden determinism: the same seed and trace must yield byte-identical
//! canonical reports AND byte-identical trace logs, no matter how many
//! harness threads execute the trials. This is what makes the JSONL
//! traces usable as golden files and keeps every `--threads N` figure
//! run reproducible.

use rif_events::parallel_trials;
use rif_events::trace::{JsonlSink, SharedBuf};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::SynthConfig;

/// One fully-observed run: returns the canonical report JSON and the
/// raw JSONL trace log.
fn golden_run(retry: RetryKind, seed: u64) -> (String, String) {
    let trace = SynthConfig {
        read_ratio: 0.8,
        cold_read_ratio: 0.5,
        ..SynthConfig::default()
    }
    .generate(120, seed);
    let mut cfg = SsdConfig::small(retry, 2000);
    cfg.queue_depth = 16;
    cfg.seed = seed;
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(&trace);
    (report.to_json(), buf.contents())
}

/// Trial `i` exercises a distinct (scheme, seed) pair so the comparison
/// covers every retry engine, not just one code path.
fn trial(i: usize) -> (String, String) {
    let retry = RetryKind::ALL[i % RetryKind::ALL.len()];
    golden_run(retry, 100 + i as u64)
}

#[test]
fn reports_and_traces_are_identical_across_thread_counts() {
    let n = RetryKind::ALL.len();
    let serial = parallel_trials(1, n, trial);
    let threaded = parallel_trials(8, n, trial);
    assert_eq!(serial.len(), threaded.len());
    for (i, (s, t)) in serial.iter().zip(threaded.iter()).enumerate() {
        let retry = RetryKind::ALL[i % n];
        assert!(!s.1.is_empty(), "trial {i} ({retry}) produced no trace");
        assert_eq!(s.0, t.0, "trial {i} ({retry}): report JSON diverged");
        assert_eq!(s.1, t.1, "trial {i} ({retry}): trace log diverged");
    }
}

#[test]
fn repeated_threaded_runs_are_stable() {
    let n = RetryKind::ALL.len();
    let first = parallel_trials(8, n, trial);
    let second = parallel_trials(8, n, trial);
    assert_eq!(first, second, "back-to-back threaded runs must agree");
}

#[test]
fn report_json_is_byte_stable_for_a_fixed_run() {
    // Same (scheme, seed) twice in the same thread: the canonical
    // serializer has no ambient state (maps, pointers, time) to leak.
    let (a_json, a_trace) = golden_run(RetryKind::Rif, 7);
    let (b_json, b_trace) = golden_run(RetryKind::Rif, 7);
    assert_eq!(a_json, b_json);
    assert_eq!(a_trace, b_trace);
    // And a different seed genuinely changes the output, so the equality
    // checks above cannot pass vacuously.
    let (c_json, _) = golden_run(RetryKind::Rif, 8);
    assert_ne!(a_json, c_json);
}
