//! Property-based tests for the CSV block-trace writer/parser pair.
//!
//! Three families of properties:
//! - round-trip: `Trace` -> `writer::to_csv` -> `parser::parse_csv` is
//!   lossless for whole-microsecond arrivals (the CSV's native unit);
//! - rejection: injecting a malformed record into an otherwise valid
//!   file fails with the right [`ParseErrorKind`] and 1-based line
//!   number, no matter where the record lands;
//! - normalization: parsed traces are sorted by arrival even when the
//!   input lines are not.

use proptest::prelude::*;
use rif::workloads::parser::{self, ParseErrorKind};
use rif::workloads::writer;
use rif::workloads::{IoOp, IoRequest, Trace};
use rif_events::SimTime;

/// Requests with whole-microsecond arrivals, so a CSV round trip (which
/// stores timestamps in µs) reproduces them exactly.
fn req_strategy() -> impl Strategy<Value = IoRequest> {
    (
        0u64..5_000_000,
        any::<bool>(),
        0u64..(1 << 40),
        1u32..(64 << 20),
    )
        .prop_map(|(us, read, offset, bytes)| IoRequest {
            arrival: SimTime::from_us(us),
            op: if read { IoOp::Read } else { IoOp::Write },
            offset,
            bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn csv_roundtrip_is_lossless(reqs in prop::collection::vec(req_strategy(), 0..120)) {
        let trace = Trace::new(reqs);
        let back = parser::parse_csv(&writer::to_csv(&trace)).expect("roundtrip parse");
        prop_assert_eq!(back.len(), trace.len());
        prop_assert_eq!(back.total_bytes(), trace.total_bytes());
        prop_assert_eq!(back.read_bytes(), trace.read_bytes());
        // Stable sort on both sides: equal-arrival requests keep their
        // writer order, so the round trip is an exact identity.
        for (a, b) in trace.iter().zip(back.iter()) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn malformed_line_is_rejected_with_its_number(
        reqs in prop::collection::vec(req_strategy(), 0..30),
        pos_seed in any::<u64>(),
        kind in 0u8..4,
    ) {
        let trace = Trace::new(reqs);
        let mut lines: Vec<String> = writer::to_csv(&trace)
            .lines()
            .map(str::to_string)
            .collect();
        let bad = match kind {
            0 => "17,R,4096",     // three fields
            1 => "oops,R,0,4096", // non-numeric timestamp
            2 => "17,Q,0,4096",   // unknown op
            _ => "17,R,0,0",      // zero-length request
        };
        // Anywhere after the header comment (line 1).
        let pos = 1 + (pos_seed as usize) % lines.len();
        lines.insert(pos, bad.to_string());
        let e = parser::parse_csv(&lines.join("\n")).expect_err("must reject");
        prop_assert_eq!(e.line, pos + 1);
        let kind_matches = match kind {
            0 => matches!(e.kind, ParseErrorKind::FieldCount(3)),
            1 => matches!(e.kind, ParseErrorKind::BadNumber(_)),
            2 => matches!(e.kind, ParseErrorKind::BadOp(_)),
            _ => matches!(e.kind, ParseErrorKind::EmptyRequest),
        };
        prop_assert!(kind_matches, "kind {} got {:?}", kind, e.kind);
    }

    #[test]
    fn parsed_arrivals_are_monotone_even_from_shuffled_input(
        reqs in prop::collection::vec(req_strategy(), 1..120),
    ) {
        let trace = Trace::new(reqs);
        let total = trace.total_bytes();
        // Reverse the data rows so the file is (generally) out of order;
        // the parser must hand back a normalized trace regardless.
        let csv = writer::to_csv(&trace);
        let mut rows: Vec<&str> = csv.lines().skip(1).collect();
        rows.reverse();
        let back = parser::parse_csv(&rows.join("\n")).expect("parse shuffled");
        prop_assert_eq!(back.len(), trace.len());
        prop_assert_eq!(back.total_bytes(), total);
        let mut last = SimTime::ZERO;
        for r in &back {
            prop_assert!(r.arrival >= last, "arrivals must be non-decreasing");
            last = r.arrival;
        }
        // Same multiset of arrivals as the original.
        let a: Vec<u64> = trace.iter().map(|r| r.arrival.as_ns()).collect();
        let b: Vec<u64> = back.iter().map(|r| r.arrival.as_ns()).collect();
        prop_assert_eq!(a, b);
    }
}
