//! Cross-crate integration tests: workload generation → SSD simulation →
//! report invariants, across schemes and wear stages.

use rif::prelude::*;

fn saturating_trace(name: &str, n: usize, seed: u64) -> Trace {
    let mut cfg = WorkloadProfile::by_name(name).expect("workload").config();
    cfg.mean_interarrival_ns = 2_500.0;
    cfg.generate(n, seed)
}

fn run_small(retry: RetryKind, pe: u32, trace: &Trace) -> SimReport {
    Simulator::new(SsdConfig::small(retry, pe)).run(trace)
}

#[test]
fn all_schemes_complete_every_request() {
    let trace = saturating_trace("Sys0", 400, 3);
    for retry in RetryKind::ALL {
        let report = run_small(retry, 1000, &trace);
        assert_eq!(
            report.completed_requests,
            trace.len() as u64,
            "{retry} dropped requests"
        );
        assert_eq!(report.completed_bytes, trace.total_bytes());
        assert_eq!(report.read_bytes, trace.read_bytes());
    }
}

#[test]
fn bandwidth_ordering_matches_fig17_at_high_wear() {
    let trace = saturating_trace("Ali121", 700, 5);
    let bw = |retry| run_small(retry, 2000, &trace).io_bandwidth_mbps();
    let senc = bw(RetryKind::Sentinel);
    let swr = bw(RetryKind::SwiftRead);
    let swrp = bw(RetryKind::SwiftReadPlus);
    let rpssd = bw(RetryKind::RpSsd);
    let rif = bw(RetryKind::Rif);
    let zero = bw(RetryKind::Zero);
    assert!(senc < swr * 1.02, "SENC {senc} vs SWR {swr}");
    assert!(swr < swrp, "SWR {swr} vs SWR+ {swrp}");
    assert!(swrp < rpssd * 1.05, "SWR+ {swrp} vs RPSSD {rpssd}");
    assert!(rpssd < rif, "RPSSD {rpssd} vs RiF {rif}");
    // Fig. 17: RiF within ~2 % of the no-retry bound.
    assert!(rif > zero * 0.95, "RiF {rif} vs SSDzero {zero}");
    assert!(rif <= zero * 1.03, "RiF {rif} exceeds SSDzero {zero}");
}

#[test]
fn retry_pressure_grows_with_pe_cycles() {
    let trace = saturating_trace("Sys1", 400, 7);
    let mut last_failures = 0;
    for pe in [0u32, 1000, 2000] {
        let report = run_small(RetryKind::IdealOne, pe, &trace);
        assert!(
            report.decode_failures >= last_failures,
            "failures dropped at {pe} P/E"
        );
        last_failures = report.decode_failures;
    }
    assert!(last_failures > 0, "no retries even at 2K P/E");
}

#[test]
fn rif_eliminates_uncor_traffic() {
    let trace = saturating_trace("Ali124", 500, 9);
    let senc = run_small(RetryKind::Sentinel, 2000, &trace);
    let rif = run_small(RetryKind::Rif, 2000, &trace);
    assert!(
        senc.uncor_page_transfers > 100,
        "SENC shows no UNCOR traffic"
    );
    // Fig. 18: RiF wastes ≈1.8 % where SENC wastes half the channel.
    let rif_waste = rif.uncor_page_transfers as f64 / senc.uncor_page_transfers as f64;
    assert!(rif_waste < 0.1, "RiF UNCOR ratio {rif_waste}");
    assert!(rif.in_die_retries > 0);
    assert!(rif.channel_usage().wasted() < senc.channel_usage().wasted() * 0.3);
}

#[test]
fn rpssd_cuts_eccwait_but_not_uncor() {
    let trace = saturating_trace("Ali124", 500, 11);
    let one = run_small(RetryKind::IdealOne, 2000, &trace);
    let rpssd = run_small(RetryKind::RpSsd, 2000, &trace);
    // RPSSD still ships uncorrectable pages across the channel...
    assert!(rpssd.uncor_page_transfers > 0);
    // ...but its early-terminated decodes shrink ECCWAIT (§VI-B).
    assert!(
        rpssd.channel_usage().eccwait < one.channel_usage().eccwait,
        "RPSSD eccwait {} vs SSDone {}",
        rpssd.channel_usage().eccwait,
        one.channel_usage().eccwait
    );
}

#[test]
fn tail_latency_shrinks_under_rif() {
    let mut cfg = WorkloadProfile::by_name("Ali124")
        .expect("workload")
        .config();
    // Moderate load so latency reflects the device, not the backlog.
    cfg.mean_interarrival_ns = 9_000.0;
    let trace = cfg.generate(600, 13);
    let senc = run_small(RetryKind::Sentinel, 2000, &trace);
    let rif = run_small(RetryKind::Rif, 2000, &trace);
    let senc_tail = senc.read_latency.percentile(99.0).unwrap().as_us();
    let rif_tail = rif.read_latency.percentile(99.0).unwrap().as_us();
    assert!(
        rif_tail < senc_tail,
        "p99: RiF {rif_tail} vs SENC {senc_tail}"
    );
}

#[test]
fn write_heavy_workload_flows_through() {
    // Ali2 is 73 % writes: exercises allocation, programs and retention
    // resets end to end.
    let trace = saturating_trace("Ali2", 400, 15);
    let report = run_small(RetryKind::Rif, 1000, &trace);
    assert_eq!(report.completed_requests, 400);
    // Writes dominate: most bytes are not read bytes.
    assert!(report.read_bytes < report.completed_bytes / 2);
}

#[test]
fn reports_are_reproducible() {
    let trace = saturating_trace("Ali46", 300, 17);
    let a = run_small(RetryKind::SwiftRead, 1000, &trace);
    let b = run_small(RetryKind::SwiftRead, 1000, &trace);
    assert_eq!(a.makespan, b.makespan);
    assert_eq!(a.decode_failures, b.decode_failures);
    assert_eq!(a.uncor_page_transfers, b.uncor_page_transfers);
    assert_eq!(
        a.read_latency.percentile(99.0),
        b.read_latency.percentile(99.0)
    );
}

#[test]
fn channel_usage_is_conserved_for_every_scheme() {
    let trace = saturating_trace("Ali295", 300, 19);
    for retry in RetryKind::ALL {
        let report = run_small(retry, 2000, &trace);
        for (i, u) in report.per_channel_usage.iter().enumerate() {
            let sum = u.idle + u.cor + u.uncor + u.eccwait;
            assert!(
                (sum - 1.0).abs() < 1e-9,
                "{retry} channel {i} usage sums to {sum}"
            );
        }
    }
}

#[test]
fn timeline_example_matches_paper_ordering() {
    use rif::ssd::timeline::example_256k;
    let zero = example_256k(RetryKind::Zero).total;
    let one = example_256k(RetryKind::IdealOne).total;
    let rif = example_256k(RetryKind::Rif).total;
    assert!(zero < rif, "SSDzero {zero} vs RiF {rif}");
    assert!(rif < one, "RiF {rif} vs SSDone {one}");
}
