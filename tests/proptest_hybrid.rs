//! Property-based tests over the hybrid SLC/QLC FTL's migration
//! invariants (DESIGN §14): across arbitrary interleavings of writes,
//! migrations and the GC they trigger, no slot is ever lost or
//! duplicated, the mapping stays total, and the cache never exceeds its
//! configured capacity.

use proptest::prelude::*;
use rif::flash::FlashGeometry;
use rif::ssd::hybrid::HybridFtl;

/// A geometry small enough that random workloads exercise GC, forced
/// evictions and SLC block reclamation within a few hundred operations,
/// yet with enough capacity-region headroom that no legal interleaving
/// of the ops below can overflow it (worst-case round-robin die skew
/// puts every live slot on one die).
fn tiny_geometry() -> FlashGeometry {
    FlashGeometry {
        channels: 2,
        dies_per_channel: 1,
        planes_per_die: 4,
        blocks_per_plane: 32,
        pages_per_block: 4,
        page_bytes: 16 * 1024,
    }
}

/// One step of the random workload.
#[derive(Debug, Clone, Copy)]
enum HybridOp {
    Write(u64),
    Migrate(u64),
    Read(u64),
    DrainBatch(usize),
}

/// Decodes a raw `(kind, payload)` draw into an op over `slots` slots.
/// Writes dominate so the cache fills; explicit migrations, reads and
/// batch drains interleave with them.
fn decode_op((kind, payload): (u64, u64), slots: u64) -> HybridOp {
    match kind {
        0..=3 => HybridOp::Write(payload % slots),
        4 | 5 => HybridOp::Migrate(payload % slots),
        6 | 7 => HybridOp::Read(payload % slots),
        _ => HybridOp::DrainBatch(1 + (payload % 15) as usize),
    }
}

fn apply(ftl: &mut HybridFtl, op: HybridOp) {
    match op {
        HybridOp::Write(s) => {
            ftl.write(s);
        }
        HybridOp::Migrate(s) => {
            ftl.migrate(s);
        }
        HybridOp::Read(s) => {
            ftl.locate_read(s);
        }
        HybridOp::DrainBatch(b) => {
            for s in ftl.migration_candidates(b) {
                ftl.migrate(s);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full integrity audit holds after every single operation of an
    /// arbitrary interleaving: mapping totality, no duplicated physical
    /// locations, live tables consistent, cache membership exact, and
    /// occupancy within capacity.
    #[test]
    fn interleavings_preserve_all_invariants(
        frac_tenths in 0u32..6,
        raw_ops in prop::collection::vec((0u64..9, any::<u64>()), 1..300),
    ) {
        let mut ftl = HybridFtl::new(tiny_geometry(), f64::from(frac_tenths) / 10.0);
        for (i, &raw) in raw_ops.iter().enumerate() {
            let op = decode_op(raw, 20);
            apply(&mut ftl, op);
            if let Err(e) = ftl.check_integrity() {
                panic!("after op {i} {op:?}: {e}");
            }
        }
    }

    /// No slot is lost or duplicated: after any interleaving, every slot
    /// ever touched resolves to exactly one location, and no two slots
    /// share one.
    #[test]
    fn no_slot_lost_or_duplicated(
        frac_tenths in 0u32..6,
        raw_ops in prop::collection::vec((0u64..9, any::<u64>()), 1..250),
    ) {
        let mut ftl = HybridFtl::new(tiny_geometry(), f64::from(frac_tenths) / 10.0);
        let mut touched = std::collections::BTreeSet::new();
        for &raw in &raw_ops {
            let op = decode_op(raw, 16);
            if let HybridOp::Write(s) | HybridOp::Read(s) = op {
                touched.insert(s);
            }
            apply(&mut ftl, op);
        }
        let mut seen = std::collections::BTreeSet::new();
        for &s in &touched {
            let loc = ftl.locate_read(s);
            prop_assert!(
                seen.insert((loc.die_linear, loc.block, loc.page)),
                "slot {s} shares {loc:?} with another slot"
            );
        }
        prop_assert_eq!(ftl.touched().len(), touched.len());
    }

    /// Cache occupancy never exceeds the configured capacity, even under
    /// pure write pressure that forces evictions.
    #[test]
    fn cache_occupancy_never_exceeds_capacity(
        frac_tenths in 0u32..6,
        writes in prop::collection::vec(0u64..24, 1..400),
    ) {
        let mut ftl = HybridFtl::new(tiny_geometry(), f64::from(frac_tenths) / 10.0);
        for &s in &writes {
            ftl.write(s);
            prop_assert!(ftl.cached_slots() <= ftl.cache_capacity_slots());
            prop_assert!(ftl.cache_occupancy() <= 1.0 + 1e-12);
        }
        if let Err(e) = ftl.check_integrity() {
            panic!("after write burst: {e}");
        }
    }

    /// Migration is conservative: draining every cache resident empties
    /// the cache without touching any non-cached slot's mapping.
    #[test]
    fn full_drain_empties_cache_and_preserves_mappings(
        writes in prop::collection::vec(0u64..24, 1..150),
    ) {
        let mut ftl = HybridFtl::new(tiny_geometry(), 0.5);
        for &s in &writes {
            ftl.write(s);
        }
        let uncached: Vec<u64> = ftl
            .touched()
            .iter()
            .copied()
            .filter(|&s| !ftl.is_cached(s))
            .collect();
        let before: Vec<(u64, _)> = uncached
            .into_iter()
            .map(|s| (s, ftl.locate_read(s)))
            .collect();
        loop {
            let batch = ftl.migration_candidates(64);
            if batch.is_empty() {
                break;
            }
            for s in batch {
                ftl.migrate(s);
            }
        }
        prop_assert_eq!(ftl.cached_slots(), 0);
        prop_assert!(ftl.cache_occupancy().abs() < 1e-12);
        for (s, loc) in before {
            prop_assert_eq!(ftl.locate_read(s), loc, "migration moved uncached slot {}", s);
        }
        if let Err(e) = ftl.check_integrity() {
            panic!("after full drain: {e}");
        }
    }
}
