//! The trace checker applied to real simulator runs: three synthetic
//! workloads (read-heavy, write-heavy, mixed at QD32) under every retry
//! scheme must produce traces that satisfy all conservation invariants.

use rif_events::trace::{JsonlSink, SharedBuf, TraceRecord};
use rif_ssd::tracecheck::TraceChecker;
use rif_ssd::{DriftClock, LearnerConfig, LearningMode, RetryKind, Simulator, SsdConfig};
use rif_workloads::{SynthConfig, Trace};

/// Runs one traced simulation and returns (parsed records, completed
/// request count).
fn traced_run(retry: RetryKind, pe: u32, qd: usize, trace: &Trace) -> (Vec<TraceRecord>, u64) {
    let mut cfg = SsdConfig::small(retry, pe);
    cfg.queue_depth = qd;
    let buf = SharedBuf::new();
    let report = Simulator::new(cfg)
        .with_tracer(Box::new(JsonlSink::new(buf.clone())))
        .with_metrics()
        .run(trace);
    let records = TraceRecord::parse_jsonl(&buf.contents()).expect("emitted trace parses");
    (records, report.completed_requests)
}

fn read_heavy() -> Trace {
    SynthConfig {
        read_ratio: 1.0,
        cold_read_ratio: 0.6,
        ..SynthConfig::default()
    }
    .generate(150, 11)
}

fn write_heavy() -> Trace {
    SynthConfig {
        read_ratio: 0.1,
        ..SynthConfig::default()
    }
    .generate(150, 12)
}

fn mixed() -> Trace {
    SynthConfig {
        read_ratio: 0.7,
        cold_read_ratio: 0.5,
        ..SynthConfig::default()
    }
    .generate(200, 13)
}

fn assert_clean(label: &str, retry: RetryKind, pe: u32, qd: usize, trace: &Trace) {
    let (records, completed) = traced_run(retry, pe, qd, trace);
    assert_eq!(completed, trace.len() as u64, "{label}/{retry}: drain");
    assert!(!records.is_empty(), "{label}/{retry}: trace is empty");
    let violations = TraceChecker::check(&records);
    assert!(
        violations.is_empty(),
        "{label}/{retry} at {pe} P/E violated invariants:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn read_heavy_trace_clean_under_all_schemes() {
    let trace = read_heavy();
    for retry in RetryKind::ALL {
        assert_clean("read-heavy", retry, 2000, 16, &trace);
    }
}

#[test]
fn write_heavy_trace_clean_under_all_schemes() {
    let trace = write_heavy();
    for retry in RetryKind::ALL {
        assert_clean("write-heavy", retry, 1000, 16, &trace);
    }
}

#[test]
fn mixed_qd32_trace_clean_under_all_schemes() {
    let trace = mixed();
    for retry in RetryKind::ALL {
        assert_clean("mixed-qd32", retry, 2000, 32, &trace);
    }
}

#[test]
fn forced_retry_paths_stay_clean() {
    // Force decode failures so every scheme walks its full retry path
    // (sentinel reads, in-die retries, corrective re-reads) under the
    // checker's eye.
    use rif_events::SimTime;
    use rif_workloads::{IoOp, IoRequest};
    let sb = 64 * 1024;
    let trace = Trace::new(vec![
        IoRequest {
            arrival: SimTime::ZERO,
            op: IoOp::Read,
            offset: 8 * sb,
            bytes: 65536,
        },
        IoRequest {
            arrival: SimTime::from_us(1),
            op: IoOp::Read,
            offset: 40 * sb,
            bytes: 65536,
        },
    ]);
    for retry in RetryKind::ALL {
        let mut cfg = SsdConfig::small(retry, 1000);
        cfg.forced_failure_slots = Some(vec![8, 40]);
        let buf = SharedBuf::new();
        Simulator::new(cfg)
            .with_tracer(Box::new(JsonlSink::new(buf.clone())))
            .run(&trace);
        let violations = TraceChecker::check_jsonl(&buf.contents()).expect("parses");
        assert!(
            violations.is_empty(),
            "forced-retry/{retry} violated invariants: {violations:?}"
        );
    }
}

#[test]
fn learned_mode_traces_clean_with_recal_markers() {
    // Learned-mode runs add retry/recal marker spans and learner gauges
    // to the trace; all seven invariants — including the learner rule,
    // which pins recal-inside-retry nesting and finite estimate-error
    // gauges — must hold, and the markers must actually appear for a
    // scheme that recalibrates (otherwise the learner rule passes
    // vacuously).
    let trace = SynthConfig {
        read_ratio: 0.9,
        cold_read_ratio: 0.7,
        ..SynthConfig::default()
    }
    .generate(200, 17);
    for retry in [
        RetryKind::Rif,
        RetryKind::SwiftReadPlus,
        RetryKind::IdealOne,
    ] {
        let mut cfg = SsdConfig::small(retry, 2000);
        cfg.queue_depth = 16;
        cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
        cfg.drift = DriftClock {
            days_per_sec: 400.0,
            pe_per_sec: 0.0,
        };
        let buf = SharedBuf::new();
        Simulator::new(cfg)
            .with_tracer(Box::new(JsonlSink::new(buf.clone())))
            .with_metrics()
            .run(&trace);
        let records = TraceRecord::parse_jsonl(&buf.contents()).expect("emitted trace parses");
        let violations = TraceChecker::check(&records);
        assert!(
            violations.is_empty(),
            "learned/{retry} violated invariants:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        let recals = records
            .iter()
            .filter(|r| matches!(r, TraceRecord::SpanBegin { name, .. } if name == "recal"))
            .count();
        let gauges = records
            .iter()
            .filter(
                |r| matches!(r, TraceRecord::Gauge { key, .. } if key == "learner.estimate_error"),
            )
            .count();
        assert!(
            recals > 0,
            "learned/{retry}: no recal markers in an ageing run"
        );
        assert!(gauges > 0, "learned/{retry}: no estimate-error gauges");
    }
}

#[test]
fn hybrid_background_traffic_traces_clean() {
    // A hybrid run with background traffic enabled: SLC→QLC migrations
    // drain under write pressure while drift-driven refresh rewrites
    // fire, all contending with foreground reads on the same dies. Every
    // invariant — including per-die resource exclusivity, which now
    // covers gc/migrate/refresh spans — must hold, and the bg spans must
    // actually appear (otherwise exclusivity passes vacuously).
    use rif_ssd::{HybridConfig, MigrationPolicy};
    let trace = SynthConfig {
        read_ratio: 0.4,
        cold_read_ratio: 0.5,
        hot_region_bytes: 4 << 20,
        cold_region_bytes: 64 << 20,
        ..SynthConfig::default()
    }
    .generate(250, 19);
    for retry in [RetryKind::Rif, RetryKind::RpSsd] {
        let mut cfg = SsdConfig::small(retry, 1500);
        cfg.queue_depth = 16;
        let mut hybrid = HybridConfig::slc_qlc();
        hybrid.migration = MigrationPolicy::Fifo;
        hybrid.bg.high_watermark = 0.001;
        hybrid.bg.low_watermark = 0.0;
        // At this drift rate every slot is perpetually due; cap the scan
        // batch so the refresh stream stays below the dies' drain rate
        // (otherwise queued bg work grows faster than simulated time).
        hybrid.bg.refresh_scan_batch = 4;
        cfg.hybrid = Some(hybrid);
        cfg.drift = DriftClock {
            days_per_sec: 5e6,
            pe_per_sec: 0.0,
        };
        let buf = SharedBuf::new();
        let report = Simulator::new(cfg)
            .with_tracer(Box::new(JsonlSink::new(buf.clone())))
            .with_metrics()
            .run(&trace);
        assert_eq!(report.completed_requests, trace.len() as u64);
        let records = TraceRecord::parse_jsonl(&buf.contents()).expect("emitted trace parses");
        let violations = TraceChecker::check(&records);
        assert!(
            violations.is_empty(),
            "hybrid-bg/{retry} violated invariants:\n{}",
            violations
                .iter()
                .map(|v| format!("  {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
        let spans = |wanted: &str| {
            records
                .iter()
                .filter(|r| matches!(r, TraceRecord::SpanBegin { name, .. } if name == wanted))
                .count()
        };
        assert!(spans("migrate") > 0, "hybrid-bg/{retry}: no migrate spans");
        assert!(spans("refresh") > 0, "hybrid-bg/{retry}: no refresh spans");
        let h = report.hybrid.expect("hybrid summary");
        assert!(h.migrated_slots > 0 && h.refreshed_slots > 0 && h.bg_ops > 0);
    }
}

#[test]
fn metrics_registry_accounts_for_the_run() {
    let trace = mixed();
    let mut cfg = SsdConfig::small(RetryKind::Rif, 2000);
    cfg.queue_depth = 32;
    let report = Simulator::new(cfg).with_metrics().run(&trace);
    let m = report.metrics.as_ref().expect("metrics enabled");
    assert_eq!(m.counter("requests.admitted"), trace.len() as u64);
    assert_eq!(m.counter("requests.completed"), trace.len() as u64);
    assert_eq!(m.counter("bytes.completed"), trace.total_bytes());
    assert_eq!(m.counter("pages.sensed"), report.page_senses);
    assert!(m.gauge("makespan_us").unwrap() > 0.0);
    assert!(m.histogram("latency.read").is_some());
}
