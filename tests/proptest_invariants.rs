//! Property-based tests over the core data structures and invariants.

use proptest::prelude::*;
use rif::ldpc::bits::BitVec;
use rif::ldpc::decoder::{BitFlipDecoder, MinSumDecoder};
use rif::prelude::*;
use rif::workloads::stats::TraceStats;

fn bitvec_strategy(len: usize) -> impl Strategy<Value = BitVec> {
    prop::collection::vec(any::<u64>(), len / 64).prop_map(move |words| {
        let mut v = BitVec::zeros(len);
        for (i, w) in words.iter().enumerate() {
            for b in 0..64 {
                if (w >> b) & 1 == 1 {
                    v.set(i * 64 + b, true);
                }
            }
        }
        v
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn rotate_roundtrips(v in bitvec_strategy(1024), s in 0usize..4096) {
        prop_assert_eq!(v.rotate_left(s).rotate_right(s), v.clone());
        prop_assert_eq!(v.rotate_left(s).count_ones(), v.count_ones());
    }

    #[test]
    fn xor_is_involutive(a in bitvec_strategy(512), b in bitvec_strategy(512)) {
        let mut c = a.clone();
        c.xor_assign(&b);
        c.xor_assign(&b);
        prop_assert_eq!(c, a);
    }

    #[test]
    fn encode_always_satisfies_checks(seed in any::<u64>()) {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(seed);
        let data = BitVec::random(code.data_bits(), &mut rng);
        let cw = code.encode(&data);
        prop_assert!(code.check(&cw));
        prop_assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn rearrangement_preserves_pruned_weight(seed in any::<u64>(), flips in 0usize..64) {
        let code = QcLdpcCode::small_test();
        let mut rng = SimRng::seed_from(seed);
        let mut cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        for _ in 0..flips {
            cw.flip(rng.index(code.n()));
        }
        let direct = code.pruned_syndrome_weight(&cw);
        let via_hw = code.pruned_weight_rearranged(&code.rearrange(&cw));
        prop_assert_eq!(direct, via_hw);
        prop_assert_eq!(code.restore(&code.rearrange(&cw)), cw);
    }

    #[test]
    fn minsum_corrects_small_error_bursts(seed in any::<u64>(), k in 0usize..6) {
        let code = QcLdpcCode::small_test();
        let dec = MinSumDecoder::new(&code);
        let mut rng = SimRng::seed_from(seed);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let noisy = Bsc::corrupt_exact(&cw, k, &mut rng);
        let out = dec.decode(&noisy);
        prop_assert!(out.success, "failed on {} errors", k);
        prop_assert_eq!(out.decoded, cw);
    }

    #[test]
    fn bitflip_never_reports_false_success(seed in any::<u64>(), k in 0usize..40) {
        let code = QcLdpcCode::small_test();
        let dec = BitFlipDecoder::new(&code);
        let mut rng = SimRng::seed_from(seed);
        let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
        let noisy = Bsc::corrupt_exact(&cw, k, &mut rng);
        let out = dec.decode(&noisy);
        if out.success {
            prop_assert!(code.check(&out.decoded), "success with invalid word");
        }
    }

    #[test]
    fn rber_monotone_in_stress(
        pe in 0u32..3000,
        day_lo in 0.0f64..15.0,
        extra in 0.1f64..15.0,
        factor in 0.6f64..2.0,
    ) {
        let model = ErrorModel::calibrated();
        let block = BlockProfile { factor };
        let lo = model.rber_avg_default(block, OperatingPoint::new(pe, day_lo));
        let hi = model.rber_avg_default(block, OperatingPoint::new(pe, day_lo + extra));
        prop_assert!(hi >= lo, "RBER decreased with retention: {} -> {}", lo, hi);
    }

    #[test]
    fn optimal_refs_never_worse_than_default(
        pe in 0u32..3000,
        day in 0.0f64..30.0,
        factor in 0.6f64..2.0,
    ) {
        let model = ErrorModel::calibrated();
        let block = BlockProfile { factor };
        let op = OperatingPoint::new(pe, day);
        for kind in PageKind::ALL {
            let d = model.rber_default(block, op, kind);
            let o = model.rber_optimal(block, op, kind);
            // Small numerical slack: "optimal" is the per-reference
            // equal-density point, which is optimal up to integration error.
            prop_assert!(o <= d * 1.05 + 1e-9, "{kind}: optimal {o} vs default {d}");
        }
    }

    #[test]
    fn trace_generator_respects_ratios(
        rr in 0.1f64..0.95,
        cr in 0.1f64..0.9,
        seed in any::<u64>(),
    ) {
        let cfg = SynthConfig {
            read_ratio: rr,
            cold_read_ratio: cr,
            ..SynthConfig::default()
        };
        let trace = cfg.generate(1500, seed);
        let stats = TraceStats::compute(&trace);
        prop_assert!((stats.read_ratio - rr).abs() < 0.08);
        prop_assert!((stats.cold_read_ratio - cr).abs() < 0.10);
    }

    #[test]
    fn retry_probability_monotone(rber_lo in 0.0f64..0.02, delta in 0.0f64..0.01) {
        let rp = RpBehavior::paper_default();
        prop_assert!(rp.retry_probability(rber_lo + delta) >= rp.retry_probability(rber_lo) - 1e-12);
    }

    #[test]
    fn ecc_model_probabilities_valid(rber in 0.0f64..0.05) {
        let ecc = EccModel::paper_default();
        let p = ecc.failure_probability(rber);
        prop_assert!((0.0..=1.0).contains(&p));
        let it = ecc.avg_iterations(rber);
        prop_assert!((1.0..=20.0 + 1e-9).contains(&it));
        let t = ecc.t_ecc(rber).as_us();
        prop_assert!((1.0 - 1e-6..=20.0 + 1e-6).contains(&t));
    }

    #[test]
    fn histogram_percentiles_are_monotone(
        latencies in prop::collection::vec(1u64..10_000_000, 1..200),
    ) {
        let mut h = rif_events::LatencyHistogram::new();
        for &ns in &latencies {
            h.record(SimDuration::from_ns(ns));
        }
        let mut last = SimDuration::ZERO;
        for q in [1.0, 25.0, 50.0, 75.0, 99.0, 100.0] {
            let p = h.percentile(q).unwrap();
            prop_assert!(p >= last, "percentile {} not monotone", q);
            last = p;
        }
    }

    #[test]
    fn ftl_mapping_is_stable_under_interleaved_ops(ops in prop::collection::vec((any::<bool>(), 0u64..64), 1..200)) {
        use rif::ssd::ftl::Ftl;
        let mut ftl = Ftl::new(FlashGeometry::small());
        let mut last_write = std::collections::HashMap::new();
        for (is_write, slot) in ops {
            if is_write {
                let (loc, _) = ftl.write(slot);
                last_write.insert(slot, loc);
            } else {
                let loc = ftl.locate_read(slot);
                if let Some(&w) = last_write.get(&slot) {
                    prop_assert_eq!(loc, w, "read did not see the latest write");
                }
                // Reading twice yields the same location.
                prop_assert_eq!(ftl.locate_read(slot), loc);
            }
        }
    }
}
