//! Golden equivalence suite: the optimized kernels must be *bit-identical*
//! to their scalar references, and the parallel Monte-Carlo harness must be
//! thread-count invariant.
//!
//! The fast min-sum path buffers each `v2c` message and works block-major
//! on the quasi-cyclic structure (with an AVX2 instantiation picked at
//! runtime); the bit-flip decoder counts parity word-packed. Both are pure
//! reorderings of exact float/integer operations, so `DecodeOutcome`s —
//! success flag, iteration count and decoded word — must match the
//! references on every input, not just statistically.

use rif_events::SimRng;
use rif_ldpc::bits::BitVec;
use rif_ldpc::channel::Bsc;
use rif_ldpc::decoder::{BitFlipDecoder, MinSumDecoder};
use rif_ldpc::QcLdpcCode;
use rif_odear::rp::ReadRetryPredictor;

/// RBERs spanning clean, waterfall-edge and mostly-uncorrectable inputs.
const RBERS: [f64; 4] = [0.002, 0.006, 0.0085, 0.015];

fn corpus(code: &QcLdpcCode, seed: u64) -> Vec<BitVec> {
    // 4 RBERs x 14 trials = 56 noisy codewords (>= 50 per the golden bar).
    let mut rng = SimRng::seed_from(seed);
    let mut words = Vec::new();
    for &rber in &RBERS {
        let channel = Bsc::new(rber);
        for _ in 0..14 {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            words.push(channel.corrupt(&cw, &mut rng));
        }
    }
    words
}

#[test]
fn min_sum_fast_path_is_bit_identical_to_reference() {
    let code = QcLdpcCode::small_test();
    let dec = MinSumDecoder::new(&code);
    for (i, noisy) in corpus(&code, 0xC0DE).iter().enumerate() {
        let fast = dec.decode(noisy);
        let reference = dec.decode_reference(noisy);
        assert_eq!(fast, reference, "min-sum outcome diverged on word {i}");
    }
}

#[test]
fn bit_flip_fast_path_is_bit_identical_to_reference() {
    let code = QcLdpcCode::small_test();
    let dec = BitFlipDecoder::new(&code);
    for (i, noisy) in corpus(&code, 0xF11B).iter().enumerate() {
        let fast = dec.decode(noisy);
        let reference = dec.decode_reference(noisy);
        assert_eq!(fast, reference, "bit-flip outcome diverged on word {i}");
    }
}

#[test]
fn rp_rearranged_prediction_matches_original_layout() {
    // The RP hardware sees the rearranged layout; prediction must agree
    // with the original-layout path once the chunk is restored.
    let code = QcLdpcCode::small_test();
    let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
    let mut rng = SimRng::seed_from(0x5EED);
    for &rber in &RBERS {
        let channel = Bsc::new(rber);
        for _ in 0..8 {
            let cw = code.encode(&BitVec::random(code.data_bits(), &mut rng));
            let noisy = channel.corrupt(&cw, &mut rng);
            let sensed = code.rearrange(&noisy);
            let on_die = rp.predict(&sensed);
            let restored = code.restore(&sensed);
            assert_eq!(restored, noisy, "restore must invert rearrange");
            let off_die = rp.predict_original_layout(&restored);
            assert_eq!(on_die.syndrome_weight, off_die.syndrome_weight);
            assert_eq!(on_die.retry_needed, off_die.retry_needed);
        }
    }
}

#[test]
fn monte_carlo_sweeps_are_thread_count_invariant() {
    // Trial k of point i always draws from SimRng::stream(seed, i*trials+k)
    // regardless of which worker runs it, so --threads must not change a
    // single number.
    let code = QcLdpcCode::small_test();
    let rbers = [0.004, 0.0085, 0.012];
    let one = rif_ldpc::analysis::capability_sweep(&code, &rbers, 8, 99, 1);
    let eight = rif_ldpc::analysis::capability_sweep(&code, &rbers, 8, 99, 8);
    assert_eq!(one, eight);

    let rp = ReadRetryPredictor::for_capability(&code, 0.0085);
    let one = rif_odear::accuracy::measure_accuracy(&code, &rp, &rbers, 10, 7, 1);
    let eight = rif_odear::accuracy::measure_accuracy(&code, &rp, &rbers, 10, 7, 8);
    assert_eq!(one, eight);
}
