//! Bit-level integration of the LDPC, flash and ODEAR crates: the flows a
//! RiF chip executes, end to end on real codewords with physically
//! modelled error rates.

use rif::ldpc::bits::BitVec;
use rif::ldpc::decoder::MinSumDecoder;
use rif::odear::accuracy::{mean_accuracy_above, measure_accuracy};
use rif::prelude::*;

#[test]
fn write_read_roundtrip_through_rearranged_layout() {
    // Controller flow of §V-B: encode → rearrange → store → sense with
    // errors → restore → decode. Data must survive a realistic RBER.
    let code = QcLdpcCode::small_test();
    let model = ErrorModel::calibrated();
    let decoder = MinSumDecoder::new(&code);
    let mut rng = SimRng::seed_from(1);

    let op = OperatingPoint::new(500, 6.0); // well below the capability age
    let rber = model.rber_default(BlockProfile::median(), op, PageKind::Lsb);
    assert!(rber < 0.0085, "test premise: rber {rber}");

    for _ in 0..5 {
        let data = BitVec::random(code.data_bits(), &mut rng);
        let stored = code.rearrange(&code.encode(&data));
        let sensed = Bsc::new(rber).corrupt(&stored, &mut rng);
        let out = decoder.decode(&code.restore(&sensed));
        assert!(out.success);
        assert_eq!(code.extract_data(&out.decoded), data);
    }
}

#[test]
fn rp_accuracy_headline_numbers() {
    // The Fig. 14 headline: with chunking + pruning, RP still agrees with
    // the real decoder on the overwhelming majority of uncorrectable
    // pages. The small-circulant code shifts the waterfall slightly; we
    // calibrate RP at the measured capability and check accuracy above it.
    // Note: small_test has only t = 64 pruned syndromes, so its weight
    // statistic is 4× noisier than the paper's t = 1024; probe points a
    // little further from the waterfall than Fig. 14's grid.
    let code = QcLdpcCode::small_test();
    let capability = 0.011; // measured 10 % failure point of small_test
    let rp = ReadRetryPredictor::for_capability(&code, capability);
    let rbers = [0.004, 0.006, 0.018, 0.022, 0.026];
    let points = measure_accuracy(&code, &rp, &rbers, 60, 2, 1);
    let above = mean_accuracy_above(&points, capability);
    assert!(above > 0.93, "accuracy above capability {above}");
    // Below the capability RP rarely fires falsely.
    assert!(points[0].false_retry_rate < 0.05);
    assert!(points[1].false_retry_rate < 0.10);
}

#[test]
fn odear_engine_outputs_always_decode_after_in_die_retry() {
    let engine = OdearEngine::new(QcLdpcCode::small_test(), ErrorModel::calibrated());
    let decoder = MinSumDecoder::new(engine.code());
    let mut rng = SimRng::seed_from(3);
    let page: Vec<BitVec> = (0..4)
        .map(|_| {
            engine
                .code()
                .encode(&BitVec::random(engine.code().data_bits(), &mut rng))
        })
        .collect();
    let mut retried = 0;
    for day in [18, 22, 26, 30] {
        let out = engine.read_page(
            &page,
            OperatingPoint::new(2000, day as f64),
            BlockProfile::median(),
            PageKind::Csb,
            &mut rng,
        );
        if out.retried {
            retried += 1;
            for chunk in &out.transferred {
                assert!(
                    decoder.decode(&engine.code().restore(chunk)).success,
                    "day {day}: retried data failed off-chip decode"
                );
            }
        }
    }
    assert!(
        retried >= 3,
        "expected most aged reads to retry, got {retried}"
    );
}

#[test]
fn swift_read_voltages_keep_pages_decodable_for_a_month() {
    // RVS (§IV-C) must pick references that keep every page kind decodable
    // across the refresh horizon at end-of-life wear.
    let model = TlcModel::calibrated();
    let rvs = ReadVoltageSelector::new(model.clone());
    let mut rng = SimRng::seed_from(5);
    for day in [10.0, 20.0, 30.0] {
        for kind in PageKind::ALL {
            let op = OperatingPoint::new(2000, day);
            let refs = rvs.select(op, 1.0, kind, &mut rng);
            let rber = model.rber(op, 1.0, refs.as_array(), kind);
            assert!(
                rber < 0.0085,
                "day {day} {kind}: RVS-selected RBER {rber} above capability"
            );
        }
    }
}

#[test]
fn behavior_model_matches_engine_retry_rate() {
    // The event-level simulator replaces the bit-level engine with
    // RpBehavior; their retry rates must agree within Monte-Carlo noise.
    let engine = OdearEngine::new(QcLdpcCode::small_test(), ErrorModel::calibrated());
    let behavior = RpBehavior::from_predictor(engine.rp());
    let model = ErrorModel::calibrated();
    let mut rng = SimRng::seed_from(7);
    let page: Vec<BitVec> = (0..4)
        .map(|_| {
            engine
                .code()
                .encode(&BitVec::random(engine.code().data_bits(), &mut rng))
        })
        .collect();
    let op = OperatingPoint::new(1000, 12.0);
    let block = BlockProfile::median();
    let rber = model.rber_default(block, op, PageKind::Msb);

    let trials = 120;
    let engine_rate = (0..trials)
        .filter(|_| {
            engine
                .read_page(&page, op, block, PageKind::Msb, &mut rng)
                .retried
        })
        .count() as f64
        / trials as f64;
    let model_rate = behavior.retry_probability(rber);
    assert!(
        (engine_rate - model_rate).abs() < 0.15,
        "engine {engine_rate} vs behavioural {model_rate} at rber {rber}"
    );
}

#[test]
fn energy_model_net_win_at_observed_retry_rates() {
    // Tie §VI-C to the simulator: at the uncorrectable-read rates the
    // SENC run exhibits at 2K P/E, the RP module saves net energy.
    let mut cfg = WorkloadProfile::by_name("Ali124")
        .expect("workload")
        .config();
    cfg.mean_interarrival_ns = 2_500.0;
    let trace = cfg.generate(400, 9);
    let report = Simulator::new(SsdConfig::small(RetryKind::IdealOne, 2000)).run(&trace);
    let uncor_rate = report.uncor_page_transfers as f64 / report.page_senses as f64;
    let ppa = PpaModel::paper();
    assert!(
        uncor_rate > ppa.break_even_retry_rate() * 10.0,
        "retry rate {uncor_rate} unexpectedly low"
    );
    assert!(ppa.net_energy_nj(report.page_senses, uncor_rate) < 0.0);
}
