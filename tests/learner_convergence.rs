//! Property suite pinning the online threshold learner (`rif_flash::learn`).
//!
//! Four guarantees the lifetime-sweep results rest on:
//!
//! 1. **Convergence** — under a stationary optimum with unbiased noisy
//!    re-calibration observations, the per-block estimate settles within
//!    tolerance of the optimum.
//! 2. **Window safety** — no outcome stream, however adversarial, can
//!    push an estimate (and hence the issued read references) outside
//!    the configured `[min_offset, max_offset]` window.
//! 3. **Purity** — the learner is a pure function of its outcome
//!    stream: replaying a stream reproduces every estimate bit-for-bit
//!    (`f64::to_bits`) and every counter.
//! 4. **Thread identity** — learned-mode simulator reports are
//!    byte-identical whether runs execute on one thread or race on
//!    eight, so CI's thread-determinism gate extends to learned mode.
//!
//! Compiled only with `--features proptest` (see the root `Cargo.toml`
//! `[[test]]` entry), like the other property suites.

use proptest::prelude::*;
use rif::flash::learn::{LearnerConfig, ReadOutcome, ThresholdLearner};
use rif::prelude::*;
use rif::ssd::{DriftClock, LearningMode};

/// Decode a raw generated tuple into one of the learner's outcome
/// shapes: clean pass, failure, high-syndrome pass, re-calibration, or
/// a re-calibration carrying a non-finite target (must be ignored).
fn outcome(kind: u8, retries: u32, frac: f64, target: f64) -> ReadOutcome {
    match kind % 5 {
        0 => ReadOutcome::clean_pass(),
        1 => ReadOutcome {
            failed: true,
            retries,
            syndrome_frac: frac,
            recalibrated_offset: None,
        },
        2 => ReadOutcome {
            failed: false,
            retries: 0,
            syndrome_frac: frac,
            recalibrated_offset: None,
        },
        3 => ReadOutcome {
            failed: retries > 0,
            retries,
            syndrome_frac: frac,
            recalibrated_offset: Some(target),
        },
        _ => ReadOutcome {
            failed: false,
            retries,
            syndrome_frac: frac,
            recalibrated_offset: Some(f64::NAN),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn converges_to_stationary_optimum(
        seed in any::<u64>(),
        true_off in -0.55f64..0.05,
        noise in 0.0f64..0.03,
    ) {
        let mut l = ThresholdLearner::new(LearnerConfig::default_paper());
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..400 {
            // Unbiased noisy observation of the stationary optimum, the
            // shape the simulator's ones-count re-calibration produces.
            let obs = true_off + rng.gaussian_with(0.0, noise);
            l.observe(9, &ReadOutcome {
                failed: false,
                retries: 1,
                syndrome_frac: 0.0,
                recalibrated_offset: Some(obs),
            });
        }
        let est = l.offset(9);
        let err = (est - true_off).abs();
        // EMA steady-state std is noise·√(g/(2−g)) ≈ 0.46·noise for the
        // paper gain; 0.02 + 2·noise gives comfortable headroom.
        prop_assert!(err < 0.02 + 2.0 * noise,
            "estimate {est} vs optimum {true_off} (err {err}, noise {noise})");
        prop_assert!(l.stats().recalibrations == 400);
    }

    #[test]
    fn estimates_never_leave_window(
        stream in prop::collection::vec(
            (any::<u8>(), 0u32..5, 0.0f64..1.0, -2.0f64..2.0, 0u64..4), 1..250),
    ) {
        let cfg = LearnerConfig::default_paper();
        let mut l = ThresholdLearner::new(cfg);
        let defaults = ErrorModel::calibrated().default_refs();
        for (k, retries, frac, target, block) in stream {
            l.observe(block, &outcome(k, retries, frac, target));
            for (b, est) in l.estimates() {
                prop_assert!(
                    est.is_finite() && (cfg.min_offset..=cfg.max_offset).contains(&est),
                    "block {b}: estimate {est} escaped the window");
            }
            // The refs actually issued stay finite and ordered (new()
            // inside refs_for asserts strict ordering).
            let refs = l.refs_for(block, defaults);
            for r in 1..=7 {
                prop_assert!(refs.get(r).is_finite());
            }
        }
    }

    #[test]
    fn replay_is_byte_identical(
        stream in prop::collection::vec(
            (any::<u8>(), 0u32..5, 0.0f64..1.0, -1.0f64..0.5, 0u64..8), 1..200),
    ) {
        let run = || {
            let mut l = ThresholdLearner::new(LearnerConfig::default_paper());
            for &(k, retries, frac, target, block) in &stream {
                l.observe(block, &outcome(k, retries, frac, target));
            }
            let bits: Vec<(u64, u64)> =
                l.estimates().map(|(b, e)| (b, e.to_bits())).collect();
            (bits, l.stats())
        };
        prop_assert_eq!(run(), run());
    }
}

/// Learned-mode simulation is deterministic under thread contention:
/// eight threads each replay the same four seeded runs and every report
/// must match the single-threaded reference byte for byte.
#[test]
fn learned_sim_reports_identical_across_threads() {
    fn run(seed: u64) -> String {
        let trace = SynthConfig {
            read_ratio: 0.9,
            cold_read_ratio: 0.6,
            ..SynthConfig::default()
        }
        .generate(300, seed);
        let mut cfg = SsdConfig::small(RetryKind::Rif, 1000);
        cfg.seed = seed;
        cfg.queue_depth = 16;
        cfg.learning = LearningMode::Learned(LearnerConfig::default_paper());
        cfg.drift = DriftClock {
            days_per_sec: 400.0,
            pe_per_sec: 0.0,
        };
        Simulator::new(cfg).run(&trace).to_json()
    }
    let reference: Vec<String> = (0..4).map(|i| run(40 + i)).collect();
    let handles: Vec<_> = (0..8)
        .map(|_| std::thread::spawn(|| (0..4).map(|i| run(40 + i)).collect::<Vec<String>>()))
        .collect();
    for h in handles {
        assert_eq!(h.join().unwrap(), reference, "thread run diverged");
    }
}
