//! Replay a block trace — synthetic or from a CSV file — through every
//! retry scheme and print a bandwidth/latency comparison table.
//!
//! ```sh
//! # All eight Table II workloads at 1K P/E:
//! cargo run --release --example trace_replay
//! # A custom CSV trace (timestamp_us,R|W,offset_bytes,length_bytes):
//! cargo run --release --example trace_replay -- my_trace.csv 2000
//! ```

use rif::prelude::*;
use rif::workloads::parser;

fn replay(name: &str, trace: &Trace, pe: u32) {
    let stats = TraceStats::compute(trace);
    println!(
        "\n== {name} @ {pe} P/E — {} reqs, read ratio {:.2}, cold {:.2} ==",
        stats.requests, stats.read_ratio, stats.cold_read_ratio
    );
    println!(
        "{:8} {:>9} {:>10} {:>10} {:>8} {:>8}",
        "scheme", "MB/s", "p50 µs", "p99.9 µs", "fails", "in-die"
    );
    for retry in RetryKind::ALL {
        let report = Simulator::new(SsdConfig::paper(retry, pe)).run(trace);
        println!(
            "{:8} {:>9.0} {:>10.1} {:>10.1} {:>8} {:>8}",
            retry.label(),
            report.io_bandwidth_mbps(),
            report
                .read_latency
                .percentile(50.0)
                .map(|d| d.as_us())
                .unwrap_or(0.0),
            report
                .read_latency
                .percentile(99.9)
                .map(|d| d.as_us())
                .unwrap_or(0.0),
            report.decode_failures,
            report.in_die_retries,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(path) = args.first() {
        let pe: u32 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(1);
        });
        let trace = parser::parse_csv(&text).unwrap_or_else(|e| {
            eprintln!("parse error: {e}");
            std::process::exit(1);
        });
        replay(path, &trace, pe);
        return;
    }

    for profile in rif::workloads::profiles::PAPER_WORKLOADS {
        let mut cfg = profile.config();
        cfg.mean_interarrival_ns = 3_000.0; // saturate the device
        let trace = cfg.generate(2_000, 7);
        replay(profile.name, &trace, 1000);
    }
}
