//! Regenerates the pinned oracle-mode golden reports used by
//! `tests/sim_determinism_golden.rs::oracle_reports_match_pinned_golden`.
//!
//! The dump must only be refreshed when an intentional behaviour change
//! to the oracle path lands (and the diff reviewed); the test exists to
//! catch *unintentional* byte drift from refactors:
//!
//! ```sh
//! cargo run --release --example dump_oracle_golden > tests/golden/oracle_seed_reports.json
//! ```
//!
//! The configuration mirrors `golden_run` in the determinism suite: the
//! small geometry at 2000 P/E, queue depth 16, one (scheme, seed) pair
//! per retry engine, tracing and metrics enabled.

use rif_events::trace::{JsonlSink, SharedBuf};
use rif_ssd::{RetryKind, Simulator, SsdConfig};
use rif_workloads::SynthConfig;

fn main() {
    for (i, retry) in RetryKind::ALL.into_iter().enumerate() {
        let seed = 100 + i as u64;
        let trace = SynthConfig {
            read_ratio: 0.8,
            cold_read_ratio: 0.5,
            ..SynthConfig::default()
        }
        .generate(120, seed);
        let mut cfg = SsdConfig::small(retry, 2000);
        cfg.queue_depth = 16;
        cfg.seed = seed;
        let buf = SharedBuf::new();
        let report = Simulator::new(cfg)
            .with_tracer(Box::new(JsonlSink::new(buf.clone())))
            .with_metrics()
            .run(&trace);
        println!("=== {} seed {seed} ===", retry.label());
        print!("{}", report.to_json());
    }
}
