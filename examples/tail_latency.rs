//! Read-latency tail analysis (the Fig. 19 view): CDF and percentile
//! table for Ali124 across schemes and wear stages.
//!
//! ```sh
//! cargo run --release --example tail_latency
//! ```

use rif::prelude::*;

fn main() {
    let mut wl = WorkloadProfile::by_name("Ali124")
        .expect("table workload")
        .config();
    wl.mean_interarrival_ns = 4_000.0;
    let trace = wl.generate(4_000, 13);

    for pe in [0u32, 1000, 2000] {
        println!("\n== Ali124 @ {pe} P/E cycles ==");
        println!(
            "{:8} {:>9} {:>9} {:>9} {:>9} {:>9}",
            "scheme", "p50 µs", "p99 µs", "p99.9", "p99.99", "max"
        );
        let mut senc_tail = 0.0;
        for retry in [
            RetryKind::Sentinel,
            RetryKind::SwiftRead,
            RetryKind::SwiftReadPlus,
            RetryKind::Rif,
        ] {
            let report = Simulator::new(SsdConfig::paper(retry, pe)).run(&trace);
            let p = |q: f64| {
                report
                    .read_latency
                    .percentile(q)
                    .map(|d| d.as_us())
                    .unwrap_or(0.0)
            };
            let tail = p(99.99);
            if retry == RetryKind::Sentinel {
                senc_tail = tail;
            }
            let cut = if retry == RetryKind::Rif && senc_tail > 0.0 {
                format!(
                    "  (p99.99 {:.1} % below SENC)",
                    (1.0 - tail / senc_tail) * 100.0
                )
            } else {
                String::new()
            };
            println!(
                "{:8} {:>9.1} {:>9.1} {:>9.1} {:>9.1} {:>9.1}{cut}",
                retry.label(),
                p(50.0),
                p(99.0),
                p(99.9),
                tail,
                report.read_latency.max().as_us(),
            );
        }
    }
}
