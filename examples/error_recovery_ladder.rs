//! The full error-recovery ladder of a modern SSD, on real codewords:
//!
//! 1. **hard read** at the default references — fine for young data;
//! 2. **read-retry** at RVS-selected references (what RiF performs
//!    on-die) — rescues retention-shifted pages;
//! 3. **soft sensing** (multi-level re-reads feeding LLRs to the LDPC
//!    decoder) — the last resort for pages beyond any hard read.
//!
//! The demo ages one page past each tier's limit and shows where every
//! tier stops working and what each costs in die time.
//!
//! ```sh
//! cargo run --release --example error_recovery_ladder
//! ```

use rif::flash::soft::SoftSense;
use rif::ldpc::bits::BitVec;
use rif::ldpc::decoder::MinSumDecoder;
use rif::prelude::*;

fn main() {
    let model = TlcModel::calibrated();
    let code = QcLdpcCode::small_test();
    let decoder = MinSumDecoder::new(&code);
    let rvs = ReadVoltageSelector::new(model.clone());
    let soft = SoftSense::new(model.clone());
    let timing = FlashTiming::paper();
    let mut rng = SimRng::seed_from(21);

    let data = BitVec::random(code.data_bits(), &mut rng);
    let cw = code.encode(&data);
    let kind = PageKind::Csb;
    // A weak block, aged in steps. Factor 1.3 pushes the default-reference
    // RBER past the capability early and past *optimal*-reference decoding
    // at the very end of the horizon.
    let factor = 1.3;

    println!(
        "{:>6} {:>12} | {:>22} {:>26} {:>24}",
        "age",
        "hard RBER",
        "1. hard read (40 µs)",
        "2. RVS retry (+42.5 µs)",
        "3. soft x7 (+280 µs)"
    );
    // Ages past 30 days model a *missed refresh* — the regime where even
    // optimally placed references stop being enough.
    for days in [0.0, 4.0, 15.0, 30.0, 60.0, 90.0] {
        let op = OperatingPoint::new(2000, days);
        let hard_rber = model.rber(op, factor, &model.default_refs(), kind);

        // Tier 1: hard read at default references.
        let noisy = Bsc::new(hard_rber.min(0.5)).corrupt(&cw, &mut rng);
        let t1 = decoder.decode(&noisy).success;

        // Tier 2: re-read at RVS-selected references.
        let refs = rvs.select(op, factor, kind, &mut rng);
        let retry_rber = model.rber(op, factor, refs.as_array(), kind);
        let retry_noisy = Bsc::new(retry_rber.min(0.5)).corrupt(&cw, &mut rng);
        let t2 = decoder.decode(&retry_noisy).success;

        // Tier 3: 7-level soft sensing around the tier-2 references.
        let ch = soft.soft_channel_at(op, factor, refs.as_array(), kind, 7);
        let out = decoder.decode_llr(&ch.transmit(&cw, &mut rng));
        let t3 = out.success && out.decoded == cw;

        let mark = |ok: bool| if ok { "decodes" } else { "FAILS" };
        println!(
            "{:>5.0}d {:>12.2e} | {:>22} {:>26} {:>24}",
            days,
            hard_rber,
            mark(t1),
            mark(t2),
            mark(t3)
        );
    }

    println!(
        "\nsoft-sense cost: {} senses x tR = {:.0} µs die time per page — \
         which is why RiF's goal is to keep reads in tiers 1–2.",
        7,
        soft.sense_latency(7, &timing).as_us()
    );
}
