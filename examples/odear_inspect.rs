//! Bit-level walkthrough of the ODEAR engine on real codewords.
//!
//! Programs a 16-KiB page (four QC-LDPC codewords), ages it, senses it
//! with real error injection, and shows the RP module's syndrome-weight
//! decision and the RVS re-read — then verifies the transferred data
//! decodes at the off-chip engine.
//!
//! ```sh
//! cargo run --release --example odear_inspect
//! ```

use rif::ldpc::bits::BitVec;
use rif::ldpc::decoder::MinSumDecoder;
use rif::prelude::*;

fn main() {
    // The small-circulant code keeps this demo instant; swap in
    // QcLdpcCode::paper() for the full 36 864-bit codewords.
    let engine = OdearEngine::new(QcLdpcCode::small_test(), ErrorModel::calibrated());
    let code = engine.code().clone();
    let decoder = MinSumDecoder::new(&code);
    let mut rng = SimRng::seed_from(7);

    let page: Vec<BitVec> = (0..4)
        .map(|_| code.encode(&BitVec::random(code.data_bits(), &mut rng)))
        .collect();
    println!(
        "programmed a page of 4 codewords ({} data bits each, rate {:.3})",
        code.data_bits(),
        code.rate()
    );
    println!("RP threshold rho_s = {}\n", engine.rp().rho_s());

    for (label, op) in [
        ("fresh (just written)", OperatingPoint::fresh()),
        ("7 days retention, 0 P/E", OperatingPoint::new(0, 7.0)),
        ("25 days retention, 2K P/E", OperatingPoint::new(2000, 25.0)),
    ] {
        let out = engine.read_page(&page, op, BlockProfile::median(), PageKind::Csb, &mut rng);
        let verdict = if out.retried {
            "RETRY IN-DIE"
        } else {
            "transfer"
        };
        println!(
            "{label:28} syndrome weight {:4} -> {verdict}",
            out.prediction.syndrome_weight
        );
        println!(
            "{:28} die busy {:.1} µs, transferred RBER {:.2e}",
            "",
            out.die_time.as_us(),
            out.transferred_rber
        );
        // The controller restores the rearranged layout and decodes.
        let all_decode = out
            .transferred
            .iter()
            .all(|chunk| decoder.decode(&code.restore(chunk)).success);
        println!(
            "{:28} off-chip decode: {}\n",
            "",
            if all_decode { "OK" } else { "FAILED" }
        );
    }

    let ppa = PpaModel::paper();
    println!(
        "RP hardware: {:.3} mm² ({:.4} % of a 101 mm² die), {:.2} mW, {:.1} nJ/prediction",
        ppa.rp_area_mm2,
        ppa.area_overhead_fraction() * 100.0,
        ppa.rp_power_mw,
        ppa.prediction_energy_nj
    );
    println!(
        "energy break-even: RP pays for itself once {:.2} % of reads would ship an uncorrectable page",
        ppa.break_even_retry_rate() * 100.0
    );
}
