//! Quickstart: simulate one workload on a conventional SSD and a
//! RiF-enabled SSD, and print the headline comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rif::prelude::*;

fn main() {
    // The paper's most read-intensive workload (Table II): 96 % reads,
    // 79 % of them to cold pages whose month-scale retention age makes
    // read-retry the common case.
    let profile = WorkloadProfile::by_name("Ali124").expect("table workload");
    let mut cfg = profile.config();
    // Over-drive the device so we measure the SSD, not the workload.
    cfg.mean_interarrival_ns = 3_000.0;
    let trace = cfg.generate(4_000, 42);
    let stats = TraceStats::compute(&trace);
    println!(
        "workload {}: {} requests, read ratio {:.2}, cold-read ratio {:.2}",
        profile.name, stats.requests, stats.read_ratio, stats.cold_read_ratio
    );

    // 2K P/E cycles: the paper's most worn stage, where read-retry
    // pressure peaks.
    for retry in [RetryKind::Sentinel, RetryKind::Rif, RetryKind::Zero] {
        let report = Simulator::new(SsdConfig::paper(retry, 2000)).run(&trace);
        let usage = report.channel_usage();
        println!(
            "{:8}  {:6.0} MB/s | p99 read latency {:8.1} µs | channel wasted {:4.1} %",
            retry.label(),
            report.io_bandwidth_mbps(),
            report
                .read_latency
                .percentile(99.0)
                .map(|d| d.as_us())
                .unwrap_or(0.0),
            usage.wasted() * 100.0,
        );
    }
    println!(
        "\nRiF keeps uncorrectable senses inside the die: no UNCOR transfers,\n\
         no 20-µs hopeless decodes — bandwidth tracks the no-retry bound."
    );
}
