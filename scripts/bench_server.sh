#!/usr/bin/env sh
# Server-core benchmark: epoll event loop vs thread-per-connection.
#
#   scripts/bench_server.sh [--smoke] [--out FILE]
#
# Drives the same multiplexed closed loop (`rif-client --mux`) against
# both front-door cores and writes one JSON document (default
# BENCH_server.json):
#
# - head_to_head: both cores at 1k connections (a count the legacy
#   core can still serve) — throughput and p99.9 ratios come from here;
# - scale (full mode only): both cores at 10k connections, where the
#   thread-per-connection core is expected to degrade or fail outright
#   — a failure is recorded as {"error": ...}, not papered over.
#
# `--smoke` is the CI-sized variant (head-to-head only, fewer
# requests) that finishes in a couple minutes.
#
# The simulator clock is run hot (--time-scale 2000) so simulated flash
# latency is negligible against wall time: the measured difference is
# the networking core, which is what this benchmark isolates. A core
# that fails or times out is recorded as {"error": ...} rather than
# aborting the run — the comparison is the product.
set -eu

cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_server.json
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) MODE=smoke ;;
        --out)
            shift
            OUT="$1"
            ;;
        *)
            echo "usage: scripts/bench_server.sh [--smoke] [--out FILE]" >&2
            exit 2
            ;;
    esac
    shift
done

# DEADLINE_MS is per-request: with every connection's request
# outstanding at once on a small host, seconds of honest queueing delay
# is the expected regime — a tight deadline would misreport queueing as
# failure.
H2H_CONNS=1000
SCALE_CONNS=10000
if [ "$MODE" = smoke ]; then
    REQUESTS=20000
    THREADS=2
    LIMIT=180
    DEADLINE_MS=60000
else
    REQUESTS=100000
    THREADS=4
    LIMIT=600
    DEADLINE_MS=240000
fi

# Each connection is one fd on both sides, plus listener/waker/pipes.
ulimit -n 20000 2>/dev/null || echo "bench: warning: cannot raise fd limit" >&2

cargo build -q --release -p rif-server
SRV=./target/release/rif-server
CLI=./target/release/rif-client

tmpdir="$(mktemp -d)"
server_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

wait_addr() {
    _log="$1"
    _i=0
    while [ "$_i" -lt 100 ]; do
        _addr="$(sed -n 's/^rif-server listening on //p' "$_log")"
        if [ -n "$_addr" ]; then
            printf '%s\n' "$_addr"
            return 0
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "rif-server never came up; log:" >&2
    cat "$_log" >&2
    return 1
}

# run_core NAME CORE CONNS OUTFILE — one server + one mux load.
run_core() {
    _name="$1"
    _core="$2"
    _conns="$3"
    _json="$4"
    echo "==> $_name core: $_conns connections, $REQUESTS requests" >&2
    "$SRV" --port 0 --shards 2 --time-scale 2000 --inflight-limit 65536 \
        --max-connections 0 --core "$_core" --seed 42 > "$tmpdir/$_name.log" &
    server_pid=$!
    _addr="$(wait_addr "$tmpdir/$_name.log")"
    if timeout "$LIMIT" "$CLI" --addr "$_addr" --mux --threads "$THREADS" \
        --connections "$_conns" --depth 1 --requests "$REQUESTS" \
        --max-busy-retries 1000000 --deadline-ms "$DEADLINE_MS" \
        --seed 7 > "$_json"; then
        cat "$_json" >&2
    else
        echo "bench: $_name core failed or exceeded ${LIMIT}s" >&2
        printf '{"error":"%s core failed or exceeded %ss at %s connections"}\n' \
            "$_name" "$LIMIT" "$_conns" > "$_json"
    fi
    timeout 30 "$CLI" --addr "$_addr" --shutdown > /dev/null 2>&1 \
        || kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

run_core event_loop epoll "$H2H_CONNS" "$tmpdir/evt.json"
run_core threaded legacy "$H2H_CONNS" "$tmpdir/thr.json"
if [ "$MODE" = full ]; then
    run_core event_loop_10k epoll "$SCALE_CONNS" "$tmpdir/evt10k.json"
    run_core threaded_10k legacy "$SCALE_CONNS" "$tmpdir/thr10k.json"
fi

# field FILE KEY — pull one numeric field out of a flat report.
field() {
    sed -n "s/.*\"$2\":\([0-9.][0-9.]*\).*/\1/p" "$1"
}

evt_rps="$(field "$tmpdir/evt.json" throughput_rps)"
thr_rps="$(field "$tmpdir/thr.json" throughput_rps)"
evt_p999="$(field "$tmpdir/evt.json" p999)"
thr_p999="$(field "$tmpdir/thr.json" p999)"

if [ -n "$evt_rps" ] && [ -n "$thr_rps" ]; then
    speedup="$(awk "BEGIN { printf \"%.3f\", $evt_rps / $thr_rps }")"
    p999_ratio="$(awk "BEGIN { printf \"%.3f\", $thr_p999 / $evt_p999 }")"
else
    speedup=null
    p999_ratio=null
fi

{
    printf '{\n'
    printf '  "bench": "server_core_event_loop_vs_threaded",\n'
    printf '  "mode": "%s",\n' "$MODE"
    printf '  "requests": %s,\n' "$REQUESTS"
    printf '  "client_threads": %s,\n' "$THREADS"
    printf '  "head_to_head": {\n'
    printf '    "connections": %s,\n' "$H2H_CONNS"
    printf '    "event_loop": %s,\n' "$(cat "$tmpdir/evt.json")"
    printf '    "threaded": %s\n' "$(cat "$tmpdir/thr.json")"
    printf '  },\n'
    printf '  "throughput_speedup": %s,\n' "$speedup"
    printf '  "p999_improvement": %s' "$p999_ratio"
    if [ "$MODE" = full ]; then
        printf ',\n  "scale": {\n'
        printf '    "connections": %s,\n' "$SCALE_CONNS"
        printf '    "event_loop": %s,\n' "$(cat "$tmpdir/evt10k.json")"
        printf '    "threaded": %s\n' "$(cat "$tmpdir/thr10k.json")"
        printf '  }\n'
    else
        printf '\n'
    fi
    printf '}\n'
} > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
