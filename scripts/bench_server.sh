#!/usr/bin/env sh
# Server-core benchmark: epoll event loop vs thread-per-connection.
#
#   scripts/bench_server.sh [--smoke] [--out FILE]
#
# Drives the same multiplexed closed loop (`rif-client --mux`) against
# both front-door cores and writes one JSON document (default
# BENCH_server.json):
#
# - head_to_head: both cores at 1k connections (a count the legacy
#   core can still serve) — throughput and p99.9 ratios come from here;
# - scale (full mode only): both cores at 10k connections, where the
#   thread-per-connection core is expected to degrade or fail outright
#   — a failure is recorded as {"error": ...}, not papered over;
# - cluster: the same routed closed loop against a one-node and a
#   two-node cluster (rif-cluster directory + rif-server --cluster),
#   reporting aggregate throughput and p99 of two nodes vs one.
#
# `--smoke` is the CI-sized variant (head-to-head only, fewer
# requests) that finishes in a couple minutes.
#
# The simulator clock is run hot (--time-scale 2000) so simulated flash
# latency is negligible against wall time: the measured difference is
# the networking core, which is what this benchmark isolates. A core
# that fails or times out is recorded as {"error": ...} rather than
# aborting the run — the comparison is the product.
set -eu

cd "$(dirname "$0")/.."

MODE=full
OUT=BENCH_server.json
while [ $# -gt 0 ]; do
    case "$1" in
        --smoke) MODE=smoke ;;
        --out)
            shift
            OUT="$1"
            ;;
        *)
            echo "usage: scripts/bench_server.sh [--smoke] [--out FILE]" >&2
            exit 2
            ;;
    esac
    shift
done

# DEADLINE_MS is per-request: with every connection's request
# outstanding at once on a small host, seconds of honest queueing delay
# is the expected regime — a tight deadline would misreport queueing as
# failure.
H2H_CONNS=1000
SCALE_CONNS=10000
if [ "$MODE" = smoke ]; then
    REQUESTS=20000
    THREADS=2
    LIMIT=180
    DEADLINE_MS=60000
    CLUSTER_REQUESTS=10000
else
    REQUESTS=100000
    THREADS=4
    LIMIT=600
    DEADLINE_MS=240000
    CLUSTER_REQUESTS=50000
fi

# Each connection is one fd on both sides, plus listener/waker/pipes.
ulimit -n 20000 2>/dev/null || echo "bench: warning: cannot raise fd limit" >&2

cargo build -q --release -p rif-server -p rif-cluster
SRV=./target/release/rif-server
CLI=./target/release/rif-client
CLU=./target/release/rif-cluster

tmpdir="$(mktemp -d)"
server_pid=""
cluster_pids=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    for _p in $cluster_pids; do
        kill "$_p" 2>/dev/null || true
    done
    rm -rf "$tmpdir"
}
trap cleanup EXIT

# wait_addr LOG [PREFIX] — wait for a daemon's sentinel, echo "host:port".
wait_addr() {
    _log="$1"
    _prefix="${2:-rif-server listening on}"
    _i=0
    while [ "$_i" -lt 100 ]; do
        _addr="$(sed -n "s/^$_prefix //p" "$_log")"
        if [ -n "$_addr" ]; then
            printf '%s\n' "$_addr"
            return 0
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "daemon never came up; log:" >&2
    cat "$_log" >&2
    return 1
}

# run_core NAME CORE CONNS OUTFILE — one server + one mux load.
run_core() {
    _name="$1"
    _core="$2"
    _conns="$3"
    _json="$4"
    echo "==> $_name core: $_conns connections, $REQUESTS requests" >&2
    "$SRV" --port 0 --shards 2 --time-scale 2000 --inflight-limit 65536 \
        --max-connections 0 --core "$_core" --seed 42 > "$tmpdir/$_name.log" &
    server_pid=$!
    _addr="$(wait_addr "$tmpdir/$_name.log")"
    if timeout "$LIMIT" "$CLI" --addr "$_addr" --mux --threads "$THREADS" \
        --connections "$_conns" --depth 1 --requests "$REQUESTS" \
        --max-busy-retries 1000000 --deadline-ms "$DEADLINE_MS" \
        --seed 7 > "$_json"; then
        cat "$_json" >&2
    else
        echo "bench: $_name core failed or exceeded ${LIMIT}s" >&2
        printf '{"error":"%s core failed or exceeded %ss at %s connections"}\n' \
            "$_name" "$LIMIT" "$_conns" > "$_json"
    fi
    timeout 30 "$CLI" --addr "$_addr" --shutdown > /dev/null 2>&1 \
        || kill "$server_pid" 2>/dev/null || true
    wait "$server_pid" 2>/dev/null || true
    server_pid=""
}

# run_cluster NAME NNODES OUTFILE — NNODES `--cluster` servers behind a
# shard directory, one routed closed-loop load through the cluster
# client. Node and directory processes are torn down before returning.
run_cluster() {
    _name="$1"
    _nnodes="$2"
    _cjson="$3"
    echo "==> cluster: $_nnodes node(s), $CLUSTER_REQUESTS requests" >&2
    cluster_pids=""
    set --
    _i=0
    while [ "$_i" -lt "$_nnodes" ]; do
        "$SRV" --port 0 --shards 4 --cluster --time-scale 2000 \
            --inflight-limit 65536 --max-connections 0 --seed $((60 + _i)) \
            > "$tmpdir/$_name.node$_i.log" &
        cluster_pids="$cluster_pids $!"
        _i=$((_i + 1))
    done
    _i=0
    while [ "$_i" -lt "$_nnodes" ]; do
        _naddr="$(wait_addr "$tmpdir/$_name.node$_i.log")"
        set -- "$@" --node "n$_i=$_naddr"
        _i=$((_i + 1))
    done
    "$CLU" directory "$@" --ranges 4 > "$tmpdir/$_name.dir.log" &
    cluster_pids="$cluster_pids $!"
    _daddr="$(wait_addr "$tmpdir/$_name.dir.log" \
        "rif-cluster directory listening on")"
    if timeout "$LIMIT" "$CLU" load --directory "$_daddr" \
        --requests "$CLUSTER_REQUESTS" --depth 64 --seed 7 > "$_cjson"; then
        cat "$_cjson" >&2
    else
        echo "bench: $_name cluster run failed or exceeded ${LIMIT}s" >&2
        printf '{"error":"%s cluster run failed or exceeded %ss"}\n' \
            "$_name" "$LIMIT" > "$_cjson"
    fi
    for _p in $cluster_pids; do
        kill "$_p" 2>/dev/null || true
        wait "$_p" 2>/dev/null || true
    done
    cluster_pids=""
}

run_core event_loop epoll "$H2H_CONNS" "$tmpdir/evt.json"
run_core threaded legacy "$H2H_CONNS" "$tmpdir/thr.json"
if [ "$MODE" = full ]; then
    run_core event_loop_10k epoll "$SCALE_CONNS" "$tmpdir/evt10k.json"
    run_core threaded_10k legacy "$SCALE_CONNS" "$tmpdir/thr10k.json"
fi
run_cluster cluster1 1 "$tmpdir/clu1.json"
run_cluster cluster2 2 "$tmpdir/clu2.json"

# field FILE KEY — pull one numeric field out of a flat report.
field() {
    sed -n "s/.*\"$2\":\([0-9.][0-9.]*\).*/\1/p" "$1"
}

evt_rps="$(field "$tmpdir/evt.json" throughput_rps)"
thr_rps="$(field "$tmpdir/thr.json" throughput_rps)"
evt_p999="$(field "$tmpdir/evt.json" p999)"
thr_p999="$(field "$tmpdir/thr.json" p999)"

if [ -n "$evt_rps" ] && [ -n "$thr_rps" ]; then
    speedup="$(awk "BEGIN { printf \"%.3f\", $evt_rps / $thr_rps }")"
    p999_ratio="$(awk "BEGIN { printf \"%.3f\", $thr_p999 / $evt_p999 }")"
else
    speedup=null
    p999_ratio=null
fi

clu1_rps="$(field "$tmpdir/clu1.json" throughput_rps)"
clu2_rps="$(field "$tmpdir/clu2.json" throughput_rps)"
clu1_p99="$(field "$tmpdir/clu1.json" p99)"
clu2_p99="$(field "$tmpdir/clu2.json" p99)"

if [ -n "$clu1_rps" ] && [ -n "$clu2_rps" ]; then
    cluster_speedup="$(awk "BEGIN { printf \"%.3f\", $clu2_rps / $clu1_rps }")"
    cluster_p99_ratio="$(awk "BEGIN { printf \"%.3f\", $clu1_p99 / $clu2_p99 }")"
else
    cluster_speedup=null
    cluster_p99_ratio=null
fi

{
    printf '{\n'
    printf '  "bench": "server_core_event_loop_vs_threaded",\n'
    printf '  "mode": "%s",\n' "$MODE"
    printf '  "requests": %s,\n' "$REQUESTS"
    printf '  "client_threads": %s,\n' "$THREADS"
    printf '  "head_to_head": {\n'
    printf '    "connections": %s,\n' "$H2H_CONNS"
    printf '    "event_loop": %s,\n' "$(cat "$tmpdir/evt.json")"
    printf '    "threaded": %s\n' "$(cat "$tmpdir/thr.json")"
    printf '  },\n'
    printf '  "throughput_speedup": %s,\n' "$speedup"
    printf '  "p999_improvement": %s,\n' "$p999_ratio"
    if [ "$MODE" = full ]; then
        printf '  "scale": {\n'
        printf '    "connections": %s,\n' "$SCALE_CONNS"
        printf '    "event_loop": %s,\n' "$(cat "$tmpdir/evt10k.json")"
        printf '    "threaded": %s\n' "$(cat "$tmpdir/thr10k.json")"
        printf '  },\n'
    fi
    printf '  "cluster": {\n'
    printf '    "requests": %s,\n' "$CLUSTER_REQUESTS"
    printf '    "single_node": %s,\n' "$(cat "$tmpdir/clu1.json")"
    printf '    "two_node": %s,\n' "$(cat "$tmpdir/clu2.json")"
    printf '    "aggregate_speedup": %s,\n' "$cluster_speedup"
    printf '    "p99_improvement": %s\n' "$cluster_p99_ratio"
    printf '  }\n'
    printf '}\n'
} > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"
