#!/usr/bin/env sh
# Offline CI gate. Everything here must pass with no network access.
#
#   scripts/ci.sh
#
# Steps: formatting, release build, test suite (default features plus the
# gated proptest suites), the decode-kernel perf smoke, a determinism
# check that --threads does not change a single CSV byte, and a trace
# gate that replays a quick figure run through the invariant checker.
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --features proptest (vendored shim)"
cargo test -q --features proptest --test proptest_invariants --test proptest_parser

echo "==> perf_smoke --quick"
cargo run -q --release -p rif-bench --bin perf_smoke -- --quick

echo "==> thread-count determinism (fig10, --threads 1 vs 8)"
tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT
cargo run -q --release -p rif-bench --bin fig10_syndrome_correlation -- \
    --quick --csv --seed 42 --threads 1 > "$tmpdir/t1.csv"
cargo run -q --release -p rif-bench --bin fig10_syndrome_correlation -- \
    --quick --csv --seed 42 --threads 8 > "$tmpdir/t8.csv"
diff "$tmpdir/t1.csv" "$tmpdir/t8.csv"

echo "==> trace-invariant gate (fig19 --trace-out, then trace_check)"
cargo run -q --release -p rif-bench --bin fig19_latency_cdf -- \
    --quick --seed 42 --trace-out "$tmpdir/trace" > /dev/null
cargo run -q --release -p rif-bench --bin trace_check -- "$tmpdir"/trace-*.jsonl

echo "==> ci.sh: all green"
