#!/usr/bin/env sh
# Offline CI gate. Everything here must pass with no network access.
#
#   scripts/ci.sh
#
# Steps: formatting, release build, test suite (default features plus the
# gated proptest suites), the decode-kernel perf smoke, a determinism
# check that --threads does not change a single CSV byte, a trace
# gate that replays a quick figure run through the invariant checker,
# the lifetime-sweep smoke (learned-threshold retry activity against its
# checked-in envelope),
# a loopback serving smoke (rif-server + rif-client over TCP), the
# hybrid serving gate (rif-server --hybrid: clean foreground I/O while
# background migrations and refresh run, nonzero server.bg.* gauges),
# the hybrid sweep smoke (RiF's QLC+background win must widen vs
# TLC-only — the binary self-gates via its exit code), the
# event-loop high-concurrency gate (1k multiplexed connections), a
# two-core bench smoke, the chaos gate (which runs on the default
# event-loop core), the cluster serving gate (two cluster nodes behind
# the shard directory: routed load, live migration, cluster STATS),
# the cluster chaos gate (kill-and-rebalance under load, contract PASS),
# the replication gate (RF=2: hard-kill the hottest-range primary AND
# one-way-partition a second node mid-load — contract PASS, zero failed
# reads on replicated ranges, byte-identical directory restart), and the
# multi-kill chaos gate (two seeded node kills plus a partition through
# the fault proxy on a four-node cluster, same bar).
set -eu

cd "$(dirname "$0")/.."

tmpdir="$(mktemp -d)"
server_pid=""
rl_pid=""
hy_pid=""
cap_pid=""
rp_pid=""
mux_pid=""
node_a_pid=""
node_b_pid=""
dir_pid=""
cleanup() {
    [ -n "$server_pid" ] && kill "$server_pid" 2>/dev/null || true
    [ -n "$rl_pid" ] && kill "$rl_pid" 2>/dev/null || true
    [ -n "$hy_pid" ] && kill "$hy_pid" 2>/dev/null || true
    [ -n "$cap_pid" ] && kill "$cap_pid" 2>/dev/null || true
    [ -n "$rp_pid" ] && kill "$rp_pid" 2>/dev/null || true
    [ -n "$mux_pid" ] && kill "$mux_pid" 2>/dev/null || true
    [ -n "$node_a_pid" ] && kill "$node_a_pid" 2>/dev/null || true
    [ -n "$node_b_pid" ] && kill "$node_b_pid" 2>/dev/null || true
    [ -n "$dir_pid" ] && kill "$dir_pid" 2>/dev/null || true
    rm -rf "$tmpdir"
}
trap cleanup EXIT

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> cargo test -q --features proptest (vendored shim)"
cargo test -q --features proptest --test proptest_invariants --test proptest_parser \
    --test proptest_capture --test proptest_hybrid --test learner_convergence
cargo test -q -p rif-server --features proptest --test proptest_frames
cargo test -q -p rif-cluster --features proptest --test proptest_map

echo "==> perf_smoke --quick"
cargo run -q --release -p rif-bench --bin perf_smoke -- --quick

echo "==> thread-count determinism (fig10, --threads 1 vs 8)"
cargo run -q --release -p rif-bench --bin fig10_syndrome_correlation -- \
    --quick --csv --seed 42 --threads 1 > "$tmpdir/t1.csv"
cargo run -q --release -p rif-bench --bin fig10_syndrome_correlation -- \
    --quick --csv --seed 42 --threads 8 > "$tmpdir/t8.csv"
diff "$tmpdir/t1.csv" "$tmpdir/t8.csv"

echo "==> trace-invariant gate (fig19 --trace-out, then trace_check)"
cargo run -q --release -p rif-bench --bin fig19_latency_cdf -- \
    --quick --seed 42 --trace-out "$tmpdir/trace" > /dev/null
cargo run -q --release -p rif-bench --bin trace_check -- "$tmpdir"/trace-*.jsonl

echo "==> lifetime-sweep smoke (learned thresholds inside the envelope)"
# Oracle-vs-learned sweep over the CI scheme subset; learned-mode retry
# activity must stay inside the checked-in behavioural envelope
# (regenerate with --write-envelope and review the diff when the learner
# constants change intentionally).
cargo run -q --release -p rif-bench --bin lifetime_sweep -- \
    --quick --schemes ci --seed 42 --check-envelope results/lifetime_envelope.csv

echo "==> loopback serving smoke (rif-server + rif-client)"
# Every client step runs under a hard timeout so a wedged server cannot
# hang CI; the servers themselves are killed by the EXIT trap.
cargo build -q --release -p rif-server
SRV=./target/release/rif-server
CLI=./target/release/rif-client

# Wait for a background daemon to print its listening line, echo
# "host:port". The optional second argument overrides the sentinel
# prefix (default: the rif-server one).
wait_addr() {
    _log="$1"
    _prefix="${2:-rif-server listening on}"
    _i=0
    while [ "$_i" -lt 100 ]; do
        _addr="$(sed -n "s/^$_prefix //p" "$_log")"
        if [ -n "$_addr" ]; then
            printf '%s\n' "$_addr"
            return 0
        fi
        sleep 0.1
        _i=$((_i + 1))
    done
    echo "daemon never came up; log:" >&2
    cat "$_log" >&2
    return 1
}

"$SRV" --port 0 --shards 2 --time-scale 200 --seed 42 > "$tmpdir/server.log" &
server_pid=$!
addr="$(wait_addr "$tmpdir/server.log")"

timeout 180 "$CLI" --addr "$addr" --requests 10000 --connections 4 \
    --depth 16 --seed 7 > "$tmpdir/smoke.json"
cat "$tmpdir/smoke.json"
grep -q '"completed":10000' "$tmpdir/smoke.json"
grep -q '"protocol_errors":0' "$tmpdir/smoke.json"
grep -q '"p99":' "$tmpdir/smoke.json"

# Batched submission frames: the same load again over BATCH(8) frames
# (HELLO-negotiated protocol v2) must stay error-free and actually batch.
timeout 180 "$CLI" --addr "$addr" --requests 10000 --connections 4 \
    --depth 16 --seed 7 --batch 8 > "$tmpdir/batched.json"
cat "$tmpdir/batched.json"
grep -q '"completed":10000' "$tmpdir/batched.json"
grep -q '"protocol_errors":0' "$tmpdir/batched.json"
if grep -q '"batches_sent":0,' "$tmpdir/batched.json"; then
    echo "batched run sent no BATCH frames"
    exit 1
fi

timeout 30 "$CLI" --addr "$addr" --stats > "$tmpdir/stats.txt"
grep -q '^counter server\.completed 20000$' "$tmpdir/stats.txt"
grep -q '^histogram server\.latency\.virtual ' "$tmpdir/stats.txt"

timeout 30 "$CLI" --addr "$addr" --shutdown
wait "$server_pid" || { echo "server exited non-zero"; exit 1; }
server_pid=""

# An over-rate burst against a tiny token bucket must be throttled with
# explicit BUSY backpressure (and still complete via client retries).
"$SRV" --port 0 --shards 1 --time-scale 200 --rate 300 --burst 4 \
    --seed 43 > "$tmpdir/server_rl.log" &
rl_pid=$!
addr_rl="$(wait_addr "$tmpdir/server_rl.log")"
timeout 120 "$CLI" --addr "$addr_rl" --requests 200 --connections 1 \
    --depth 16 --max-busy-retries 100000 --seed 9 > "$tmpdir/burst.json"
cat "$tmpdir/burst.json"
grep -q '"completed":200' "$tmpdir/burst.json"
if grep -q '"busy_ratelimit":0,' "$tmpdir/burst.json"; then
    echo "over-rate burst saw no BUSY backpressure"
    exit 1
fi
timeout 30 "$CLI" --addr "$addr_rl" --shutdown
wait "$rl_pid" || { echo "rate-limited server exited non-zero"; exit 1; }
rl_pid=""

# Hybrid serving gate: the shards run as hybrid SLC/QLC devices with a
# drift clock ageing the flash while serving. Foreground I/O must stay
# error-free while the background scheduler destages the SLC cache and
# refreshes aged slots — both visible as nonzero server.bg.* gauges.
# The drift rate is sized so a slot comes due for refresh roughly once
# within the run (cold slots start up to 30 days old); much faster and
# every refreshed slot is due again moments later, and the resulting
# rewrite storm starves foreground I/O on the dies.
echo "==> hybrid serving gate (rif-server --hybrid, bg traffic + clean fg)"
"$SRV" --port 0 --shards 2 --time-scale 200 --seed 47 --hybrid \
    --drift-days-per-sec 0.02 > "$tmpdir/server_hy.log" &
hy_pid=$!
addr_hy="$(wait_addr "$tmpdir/server_hy.log")"
timeout 180 "$CLI" --addr "$addr_hy" --requests 5000 --connections 4 \
    --depth 16 --read-ratio 0.8 --seed 11 > "$tmpdir/hybrid.json"
cat "$tmpdir/hybrid.json"
grep -q '"completed":5000' "$tmpdir/hybrid.json"
grep -q '"protocol_errors":0' "$tmpdir/hybrid.json"
grep -q '"failed":0' "$tmpdir/hybrid.json"
timeout 30 "$CLI" --addr "$addr_hy" --stats > "$tmpdir/hybrid_stats.txt"
grep -q '^gauge server\.bg\.shard0\.migrated_slots ' "$tmpdir/hybrid_stats.txt"
if grep -q '^gauge server\.bg\.shard0\.migrated_slots 0\.000000$' "$tmpdir/hybrid_stats.txt"; then
    echo "hybrid shards migrated nothing"
    exit 1
fi
grep -q '^gauge server\.bg\.shard0\.bg_ops ' "$tmpdir/hybrid_stats.txt"
if grep -q '^gauge server\.bg\.shard0\.bg_ops 0\.000000$' "$tmpdir/hybrid_stats.txt"; then
    echo "hybrid shards ran no background ops"
    exit 1
fi
timeout 30 "$CLI" --addr "$addr_hy" --shutdown
wait "$hy_pid" || { echo "hybrid server exited non-zero"; exit 1; }
hy_pid=""

# Capture -> replay gate: journal a served load, replay it offline twice
# (byte-identical SimReports), then drive it back through a fresh live
# server and require the wire diff to pass.
echo "==> capture/replay gate (journal, offline bit-exactness, live diff)"
"$SRV" --port 0 --shards 2 --time-scale 200 --seed 44 \
    --capture "$tmpdir/load.csv" > "$tmpdir/server_cap.log" &
cap_pid=$!
addr_cap="$(wait_addr "$tmpdir/server_cap.log")"
timeout 120 "$CLI" --addr "$addr_cap" --requests 2000 --connections 2 \
    --depth 8 --seed 17 > "$tmpdir/capload.json"
grep -q '"completed":2000' "$tmpdir/capload.json"
timeout 30 "$CLI" --addr "$addr_cap" --shutdown
wait "$cap_pid" || { echo "capture server exited non-zero"; exit 1; }
cap_pid=""
grep -q '^# rif-capture v1:' "$tmpdir/load.csv"
[ "$(grep -vc '^#' "$tmpdir/load.csv")" = "2000" ]

timeout 60 "$CLI" --replay-offline "$tmpdir/load.csv" > "$tmpdir/replay1.json"
timeout 60 "$CLI" --replay-offline "$tmpdir/load.csv" > "$tmpdir/replay2.json"
diff "$tmpdir/replay1.json" "$tmpdir/replay2.json"
grep -q '"completed_requests": 2000' "$tmpdir/replay1.json"

"$SRV" --port 0 --shards 2 --time-scale 200 --seed 45 > "$tmpdir/server_rp.log" &
rp_pid=$!
addr_rp="$(wait_addr "$tmpdir/server_rp.log")"
timeout 120 "$CLI" --addr "$addr_rp" --replay "$tmpdir/load.csv" \
    --speed 20 --batch 4 > "$tmpdir/livereplay.json"
cat "$tmpdir/livereplay.json"
grep -q '"pass":true' "$tmpdir/livereplay.json"
timeout 30 "$CLI" --addr "$addr_rp" --shutdown
wait "$rp_pid" || { echo "replay server exited non-zero"; exit 1; }
rp_pid=""

# Event-loop high-concurrency gate: 10k requests over 1k multiplexed
# connections against the default (epoll) core — every request must
# complete with zero connection, protocol, or terminal errors, and the
# server must have actually run the readiness loop.
echo "==> event-loop gate (mux client, 1000 connections, 10k requests)"
ulimit -n 8192 2>/dev/null || true
"$SRV" --port 0 --shards 2 --time-scale 500 --inflight-limit 8192 \
    --seed 46 > "$tmpdir/server_mux.log" &
mux_pid=$!
addr_mux="$(wait_addr "$tmpdir/server_mux.log")"
timeout 180 "$CLI" --addr "$addr_mux" --mux --threads 2 --connections 1000 \
    --depth 1 --requests 10000 --max-busy-retries 1000000 --seed 5 \
    > "$tmpdir/mux.json"
cat "$tmpdir/mux.json"
grep -q '"completed":10000' "$tmpdir/mux.json"
grep -q '"conn_errors":0' "$tmpdir/mux.json"
grep -q '"protocol_errors":0' "$tmpdir/mux.json"
grep -q '"failed":0' "$tmpdir/mux.json"
timeout 30 "$CLI" --addr "$addr_mux" --stats > "$tmpdir/mux_stats.txt"
grep -q '^gauge server\.poller_is_epoll ' "$tmpdir/mux_stats.txt"
grep -q '^counter server\.epoll_wakeups ' "$tmpdir/mux_stats.txt"
timeout 30 "$CLI" --addr "$addr_mux" --shutdown
wait "$mux_pid" || { echo "mux server exited non-zero"; exit 1; }
mux_pid=""

# Bench smoke: both cores, CI-sized, leaves the comparison artifact in
# the temp dir (the checked-in BENCH_server.json is the full 10k run).
echo "==> bench smoke (scripts/bench_server.sh --smoke)"
sh scripts/bench_server.sh --smoke --out "$tmpdir/BENCH_server.json" > /dev/null
grep -q '"event_loop": {"completed":20000' "$tmpdir/BENCH_server.json"
grep -q '"threaded": {"completed":20000' "$tmpdir/BENCH_server.json"

# Hybrid sweep smoke: the binary exits non-zero unless RiF's relative
# win under QLC+background exceeds its TLC-only win (the tentpole
# acceptance criterion), so running it IS the gate.
echo "==> hybrid sweep smoke (QLC+bg win must widen vs TLC-only)"
cargo run -q --release -p rif-bench --bin hybrid_sweep -- --quick > /dev/null

# Chaos gate: 10k requests through the fault-injecting proxy — 10% drop,
# 5% delay, 2% duplicate, one mid-run worker kill — must finish under the
# hard timeout with a PASS verdict from the contract checker, and the
# seeded fault schedule must reproduce byte-for-byte.
echo "==> chaos gate (fault proxy + worker kill + contract checker)"
cargo build -q --release -p rif-chaos
CHAOS=./target/release/rif-chaos
plan='seed=42,up.drop=0.1,down.delay=0.05,down.delay_us=2000,up.dup=0.02,kill=0@2000+50'
"$CHAOS" schedule --plan "$plan" --conns 4 --frames 4096 > "$tmpdir/sched1.json"
"$CHAOS" schedule --plan "$plan" --conns 4 --frames 4096 > "$tmpdir/sched2.json"
diff "$tmpdir/sched1.json" "$tmpdir/sched2.json"
timeout 300 "$CHAOS" run --plan "$plan" --requests 10000 --connections 4 \
    --depth 16 --shards 2 --deadline-ms 200 --workload-seed 7 > "$tmpdir/chaos.json"
cat "$tmpdir/chaos.json"
grep -q '"verdict":"PASS"' "$tmpdir/chaos.json"
grep -q '"kills_fired":1' "$tmpdir/chaos.json"
if grep -q '"dropped":0,' "$tmpdir/chaos.json"; then
    echo "proxy injected no drops"
    exit 1
fi

# Cluster serving gate: two `--cluster` nodes behind the shard
# directory. The routed client must complete every request, cluster
# STATS must aggregate both nodes, and a live migration (forced to both
# owners in turn, so at least one actually moves) must bump the epoch
# and leave the cluster serving.
echo "==> cluster serving gate (directory + 2 nodes + routed load + migration)"
cargo build -q --release -p rif-cluster
CLU=./target/release/rif-cluster
"$SRV" --port 0 --shards 4 --cluster --learn --time-scale 500 \
    --seed 50 > "$tmpdir/node_a.log" &
node_a_pid=$!
"$SRV" --port 0 --shards 4 --cluster --learn --time-scale 500 \
    --seed 51 > "$tmpdir/node_b.log" &
node_b_pid=$!
addr_a="$(wait_addr "$tmpdir/node_a.log")"
addr_b="$(wait_addr "$tmpdir/node_b.log")"
"$CLU" directory --node "a=$addr_a" --node "b=$addr_b" --ranges 4 \
    > "$tmpdir/dir.log" &
dir_pid=$!
addr_dir="$(wait_addr "$tmpdir/dir.log" "rif-cluster directory listening on")"

timeout 180 "$CLU" load --directory "$addr_dir" --requests 5000 \
    --depth 16 --seed 7 > "$tmpdir/cluster_load.json"
cat "$tmpdir/cluster_load.json"
grep -q '"completed":5000' "$tmpdir/cluster_load.json"
grep -q '"protocol_errors":0' "$tmpdir/cluster_load.json"

timeout 30 "$CLU" stats --directory "$addr_dir" > "$tmpdir/cluster_stats.txt"
grep -q '^# rif-cluster-stats v1 nodes=2$' "$tmpdir/cluster_stats.txt"
grep -q '^cluster counter server\.requests\.read ' "$tmpdir/cluster_stats.txt"
grep -q '^node a counter ' "$tmpdir/cluster_stats.txt"
grep -q '^node b counter ' "$tmpdir/cluster_stats.txt"

# Whichever node owns range 0, migrating it to b and then to a moves it
# at least once; afterwards a owns it and the epoch has advanced.
timeout 30 "$CLU" migrate --directory "$addr_dir" --range 0 --node b \
    > /dev/null
timeout 30 "$CLU" migrate --directory "$addr_dir" --range 0 --node a \
    > "$tmpdir/cluster_map.txt"
grep -q '^assign 0 a$' "$tmpdir/cluster_map.txt"
if grep -q 'epoch=1 ' "$tmpdir/cluster_map.txt"; then
    echo "migration never bumped the epoch"
    exit 1
fi
timeout 180 "$CLU" load --directory "$addr_dir" --requests 2000 \
    --depth 16 --seed 8 > "$tmpdir/cluster_load2.json"
grep -q '"completed":2000' "$tmpdir/cluster_load2.json"

timeout 30 "$CLI" --addr "$addr_dir" --shutdown
wait "$dir_pid" || { echo "directory exited non-zero"; exit 1; }
dir_pid=""
timeout 30 "$CLI" --addr "$addr_a" --shutdown
wait "$node_a_pid" || { echo "cluster node a exited non-zero"; exit 1; }
node_a_pid=""
timeout 30 "$CLI" --addr "$addr_b" --shutdown
wait "$node_b_pid" || { echo "cluster node b exited non-zero"; exit 1; }
node_b_pid=""

# Cluster chaos gate: kill one node mid-load, rebalance its ranges onto
# the survivor — the strict contract checker must still pass and the
# directory must really have moved ranges.
echo "==> cluster chaos gate (kill + rebalance, contract checker)"
timeout 300 "$CHAOS" cluster --requests 20000 --seed 3 > "$tmpdir/cluster_chaos.json"
cat "$tmpdir/cluster_chaos.json"
grep -q '"verdict":"PASS"' "$tmpdir/cluster_chaos.json"
if grep -q '"ranges_moved":0' "$tmpdir/cluster_chaos.json"; then
    echo "rebalance moved no ranges"
    exit 1
fi
# The kill must land mid-run: the router's connection to the dead node
# shows up as at least one journal-level connection loss.
if grep -q '"conn_losses":0' "$tmpdir/cluster_chaos.json"; then
    echo "kill was not client-visible (load finished before the kill?)"
    exit 1
fi

# Replication gate (the cluster-hardening acceptance bar): three RF=2
# nodes, hard-kill the hottest-range primary at 150ms AND one-way
# partition a second node for 250ms, restart the directory mid-run.
# The binary exits non-zero unless the strict contract checker passes
# AND no replicated-range read chain failed, so its exit code is the
# gate; the greps pin the fault schedule actually fired and the
# restarted directory restored the map byte-identically.
echo "==> replication gate (RF=2, kill primary + one-way partition)"
timeout 300 "$CHAOS" cluster --requests 20000 --nodes 3 --replicas 2 \
    --seed 11 --deadline-ms 300 --kill-after-ms 150 \
    --rebalance-after-ms 100 --dir-restart-ms 350 \
    --plan "seed=9,part=2:up@120+250" > "$tmpdir/repl_gate.json"
cat "$tmpdir/repl_gate.json"
grep -q '"verdict":"PASS"' "$tmpdir/repl_gate.json"
grep -q '"kills_fired":1,' "$tmpdir/repl_gate.json"
grep -q '"failed_replicated_reads":0,' "$tmpdir/repl_gate.json"
grep -q '"dir_restart_identical":true' "$tmpdir/repl_gate.json"
if grep -q '"partitions_fired":0,' "$tmpdir/repl_gate.json"; then
    echo "partition window never fired"
    exit 1
fi
if grep -q '"conn_losses":0,' "$tmpdir/repl_gate.json"; then
    echo "node kill was not client-visible"
    exit 1
fi

# Multi-kill chaos gate: four RF=2 nodes behind the fault proxy, two
# seeded node kills (150ms and 450ms) plus a one-way partition window —
# the two survivors must keep every range at full replication, so the
# same zero-failed-replicated-reads bar applies.
echo "==> multi-kill chaos gate (4 nodes, 2 seeded kills + partition)"
timeout 300 "$CHAOS" cluster --requests 12000 --nodes 4 --replicas 2 \
    --seed 11 --deadline-ms 300 --rebalance-after-ms 100 \
    --plan "seed=9,part=1:up@120+250,nodekill=1@150,nodekill=3@450" \
    > "$tmpdir/multikill_gate.json"
cat "$tmpdir/multikill_gate.json"
grep -q '"verdict":"PASS"' "$tmpdir/multikill_gate.json"
grep -q '"kills_fired":2,' "$tmpdir/multikill_gate.json"
grep -q '"failed_replicated_reads":0,' "$tmpdir/multikill_gate.json"
if grep -q '"partitions_fired":0,' "$tmpdir/multikill_gate.json"; then
    echo "partition window never fired"
    exit 1
fi

echo "==> ci.sh: all green"
