//! # RiF — Retry-in-Flash, reproduced in Rust
//!
//! A from-scratch reproduction of *"RiF: Improving Read Performance of
//! Modern SSDs Using an On-Die Early-Retry Engine"* (HPCA 2024): an
//! on-die early-retry (ODEAR) engine that predicts, **before any data
//! leaves the flash die**, whether a sensed page would fail its off-chip
//! LDPC decode — and if so, re-reads it in place at near-optimal read
//! voltages. The result: uncorrectable pages never waste flash-channel
//! bandwidth or ECC-engine time.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`ldpc`] — the 4-KiB QC-LDPC code, min-sum decoding, syndrome
//!   machinery and the behavioural ECC model;
//! * [`flash`] — the 3D TLC NAND substrate: V_TH physics, RBER models,
//!   V_REF selection, Swift-Read, chip timing and the synthetic
//!   characterization campaign;
//! * [`odear`] — the paper's contribution: the RP predictor, RVS voltage
//!   selector, the die-level engine, and the PPA/energy model;
//! * [`ssd`] — the discrete-event SSD simulator with all seven retry
//!   configurations of the evaluation;
//! * [`workloads`] — the eight Table II workloads as synthetic traces,
//!   plus a trace parser;
//! * [`events`] — the simulation kernel.
//!
//! # Quickstart
//!
//! ```no_run
//! use rif::prelude::*;
//!
//! // Generate the paper's most read-intensive workload...
//! let trace = WorkloadProfile::by_name("Ali124").unwrap().generate(10_000, 1);
//! // ...and run it through a RiF-enabled SSD at 1K P/E cycles.
//! let report = Simulator::new(SsdConfig::paper(RetryKind::Rif, 1000)).run(&trace);
//! println!("RiFSSD: {:.0} MB/s", report.io_bandwidth_mbps());
//! ```

pub use rif_events as events;
pub use rif_flash as flash;
pub use rif_ldpc as ldpc;
pub use rif_odear as odear;
pub use rif_ssd as ssd;
pub use rif_workloads as workloads;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use rif_events::{SimDuration, SimRng, SimTime};
    pub use rif_flash::{
        BlockProfile, ErrorModel, FlashGeometry, FlashTiming, OperatingPoint, PageKind,
        ReadVoltages, TlcModel,
    };
    pub use rif_ldpc::{Bsc, EccModel, QcLdpcCode};
    pub use rif_odear::{
        OdearEngine, PpaModel, ReadRetryPredictor, ReadVoltageSelector, RpBehavior,
    };
    pub use rif_ssd::{RetryKind, SimReport, Simulator, SsdConfig};
    pub use rif_workloads::{SynthConfig, Trace, TraceStats, WorkloadProfile};
}
